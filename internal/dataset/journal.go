package dataset

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"

	"mapc/internal/faultinject"
	"mapc/internal/fsatomic"
	"mapc/internal/phasesum"
)

// The journal makes corpus generation crash-safe: every completed
// measurement point is committed to an append-only on-disk log keyed by
// its canonical bag, so a run killed at point 90/91 resumes by re-measuring
// only the missing bag. Because each Point is a pure function of
// (Config, bag) — the PR-1 worker-invariance property — a corpus assembled
// from journaled points plus freshly measured ones is bit-for-bit identical
// to an uninterrupted run, which the golden-hash chaos tests enforce.
//
// On-disk format (one JSON value per line):
//
//	{"format":"mapc-journal-v1","config_sha256":"<hex>"}   header
//	{"key":"sift/20+surf/20","point":{...}}                 one per point
//
// Records hold *raw* (pre-normalization) points: Section V-C normalization
// is a whole-corpus transform and is re-applied after assembly, exactly as
// in a fresh run. Appends are fsynced per record; Commit (and Close, and
// every resume-open) compacts the log through an atomic temp-file+rename
// write (fsatomic), so the file on disk is always either a previous
// complete state or the new complete state. A crash mid-append can tear
// the final line only; the loader tolerates exactly that by truncating at
// the first unparsable record.
const (
	journalFormat = "mapc-journal-v1"

	// FaultSitePoint is the faultinject site fired once per bag index
	// before it is measured (Generator.SetFaultInjector).
	FaultSitePoint = "dataset.point"
	// FaultSiteJournalAppend is the faultinject site fired once per
	// journal append, with the append ordinal as index
	// (Journal.SetFaultInjector). A KindTornWrite fault here truncates
	// the record mid-write and aborts, simulating a crash between
	// write(2) and fsync.
	FaultSiteJournalAppend = "dataset.journal.append"
)

// BagKey is the canonical journal key for the 2-application bag (a, b) as
// enumerated by Bags(): member order is the enumeration order, so the same
// corpus position always maps to the same key across runs and worker
// counts.
func BagKey(a, b Member) string {
	return BagKeyOf([]Member{a, b})
}

// BagKeyOf is BagKey for k-member bags: members joined by "+" in
// enumeration order. For k=2 it produces exactly the legacy pair key, so
// v1 journals written by the pair pipeline resume unchanged.
func BagKeyOf(bag []Member) string {
	parts := make([]string, len(bag))
	for i, m := range bag {
		parts[i] = m.String()
	}
	return strings.Join(parts, "+")
}

// Fingerprint is a stable digest of every Config field that influences
// measured point values: simulator parameters, batch sizes, threads, seed,
// mixed pairs, ordering, and the effective benchmark list. Workers and
// SimCacheMB are deliberately excluded — outputs are invariant to both
// (points are bit-identical at every worker count and memo budget), so a
// corpus journaled at -workers 8 -simcache-mb 256 may be resumed at
// -workers 1 -simcache-mb 0 and vice versa.
func (c Config) Fingerprint() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cpu=%+v;gpu=%+v;batches=%v;threads=%d;seed=%d;mixed=%d;canonical=%t;benchmarks=%s",
		c.CPU, c.GPU, c.BatchSizes, c.Threads, c.Seed, c.MixedPairs, c.CanonicalOrder,
		strings.Join(c.BenchmarkNames(), ","))
	if c.EffectiveK() > 2 {
		// Appended only beyond the paper's pair corpus so every journal
		// written by the k=2 pipeline keeps its original fingerprint.
		fmt.Fprintf(&sb, ";k=%d", c.EffectiveK())
	}
	if f := c.Fidelity.Effective(); f != phasesum.Exact {
		// Same back-compat pattern as k: exact-fidelity journals (the only
		// kind older pipelines could write) keep their fingerprints, while
		// analytic tiers never mix points with exact corpora.
		fmt.Fprintf(&sb, ";fidelity=%s", f)
	}
	if c.Shares != nil {
		// Non-nil shares change every shared-GPU target, so they join the
		// fingerprint; the nil equal split keeps legacy fingerprints, and
		// an explicit uniform vector is deliberately distinct from nil
		// (bit-identical values, but a different declared intent).
		fmt.Fprintf(&sb, ";shares=%s", c.SharesLabel())
	}
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:])
}

type journalHeader struct {
	Format string `json:"format"`
	Config string `json:"config_sha256"`
}

type journalRecord struct {
	Key   string `json:"key"`
	Point Point  `json:"point"`
}

// Journal is the append-only checkpoint log of completed measurement
// points. Safe for concurrent use: the measurement pool appends from many
// goroutines.
type Journal struct {
	path string
	fp   string

	mu       sync.Mutex
	f        *os.File // nil after Close
	points   map[string]Point
	appended int // appends this session (faultinject index)
	dropped  int // torn/corrupt trailing records discarded at open
	fault    faultinject.Injector
}

// CreateJournal starts a fresh journal at path for cfg, refusing to
// clobber an existing file (pass it to OpenJournal to resume instead).
func CreateJournal(path string, cfg Config) (*Journal, error) {
	fp := cfg.Fingerprint()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		if errors.Is(err, os.ErrExist) {
			return nil, fmt.Errorf("dataset: journal %s already exists; resume it (OpenJournal / -resume) or remove it", path)
		}
		return nil, fmt.Errorf("dataset: creating journal: %w", err)
	}
	j := &Journal{path: path, fp: fp, f: f, points: map[string]Point{}}
	if err := j.writeLine(journalHeader{Format: journalFormat, Config: fp}); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return j, nil
}

// OpenJournal loads an existing journal (or creates a new one when path
// does not exist) and prepares it for appends. The header's config
// fingerprint must match cfg — resuming under different simulator
// parameters would silently mix incompatible points. A torn tail (the one
// partial line a crash mid-append can leave) is discarded and the log is
// compacted atomically before new appends, healing the file in place;
// Dropped reports how many records were discarded.
func OpenJournal(path string, cfg Config) (*Journal, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return CreateJournal(path, cfg)
	}
	if err != nil {
		return nil, fmt.Errorf("dataset: opening journal: %w", err)
	}
	points, dropped, err := readJournal(f, cfg.Fingerprint())
	f.Close()
	if err != nil {
		return nil, err
	}
	j := &Journal{path: path, fp: cfg.Fingerprint(), points: points, dropped: dropped}
	// Compact through an atomic rename: heals a torn tail and re-asserts
	// the always-complete-state invariant before any new appends.
	if err := j.commitLocked(); err != nil {
		return nil, err
	}
	af, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dataset: reopening journal for append: %w", err)
	}
	j.f = af
	return j, nil
}

// readJournal parses the header and records, truncating at the first
// unparsable record (everything after a torn line is suspect).
func readJournal(r io.Reader, wantFP string) (map[string]Point, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, 0, fmt.Errorf("dataset: reading journal header: %w", err)
		}
		return nil, 0, errors.New("dataset: journal is empty (no header)")
	}
	var hdr journalHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, 0, fmt.Errorf("dataset: parsing journal header: %w", err)
	}
	if hdr.Format != journalFormat {
		return nil, 0, fmt.Errorf("dataset: unsupported journal format %q (want %q)", hdr.Format, journalFormat)
	}
	if hdr.Config != wantFP {
		return nil, 0, fmt.Errorf(
			"dataset: journal was written under a different configuration (config_sha256 %.12s… vs %.12s…); "+
				"resume with the original flags or start a fresh journal", hdr.Config, wantFP)
	}
	points := map[string]Point{}
	dropped := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(strings.TrimSpace(string(line))) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Key == "" {
			// Torn or corrupt record: a crash between write and fsync can
			// tear the final line. Discard it and everything after —
			// those bags are simply re-measured on resume.
			dropped++
			for sc.Scan() {
				dropped++
			}
			break
		}
		points[rec.Key] = rec.Point
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("dataset: reading journal: %w", err)
	}
	return points, dropped, nil
}

// SetFaultInjector installs a chaos-testing hook fired once per append at
// FaultSiteJournalAppend. Production code never calls this; the nil
// default costs one pointer check.
func (j *Journal) SetFaultInjector(h faultinject.Injector) {
	j.mu.Lock()
	j.fault = h
	j.mu.Unlock()
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Len returns the number of distinct journaled points.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.points)
}

// Dropped reports how many torn/corrupt trailing records were discarded
// when the journal was opened.
func (j *Journal) Dropped() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Lookup returns the journaled point for key, if present. The point's
// feature slice is a private copy: corpus normalization scales X in place,
// and the journal must keep holding raw values.
func (j *Journal) Lookup(key string) (Point, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	p, ok := j.points[key]
	if ok {
		p.X = append([]float64(nil), p.X...)
	}
	return p, ok
}

// Append durably records one completed point: the record line is written
// and fsynced before Append returns, so a completed measurement survives
// any subsequent crash. Duplicate keys are idempotent (points are pure
// functions of their bag).
func (j *Journal) Append(key string, p Point) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("dataset: append to closed journal")
	}
	idx := j.appended
	j.appended++

	line, err := json.Marshal(journalRecord{Key: key, Point: p})
	if err != nil {
		return fmt.Errorf("dataset: marshaling journal record: %w", err)
	}
	line = append(line, '\n')

	if ferr := faultinject.Fire(j.fault, FaultSiteJournalAppend, idx); ferr != nil {
		var tw *faultinject.TornWrite
		if errors.As(ferr, &tw) {
			// Simulate dying between write(2) and fsync: a prefix of the
			// record reaches the file, then the "process" is gone. The
			// next OpenJournal must truncate this tail.
			keep := tw.KeepBytes
			if keep > len(line)-2 {
				// Never the complete JSON (with or without its newline):
				// that would be a clean record, not a torn one.
				keep = len(line) - 2
			}
			_, _ = j.f.Write(line[:keep])
			_ = j.f.Sync()
		}
		return fmt.Errorf("dataset: journal append %d: %w", idx, ferr)
	}

	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("dataset: appending journal record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("dataset: syncing journal: %w", err)
	}
	// Store a private copy of the feature slice: the caller's X is later
	// normalized in place (Corpus.normalize), and the journal must keep
	// raw values so a post-run Commit/Close never persists scaled rows.
	p.X = append([]float64(nil), p.X...)
	j.points[key] = p
	return nil
}

// Commit compacts the journal through an atomic temp-file+rename write:
// header plus every known point in sorted-key order. The append handle is
// re-established on the new file. Called by Close and by every
// resume-open; also safe to call at any checkpoint (e.g. on SIGTERM).
func (j *Journal) Commit() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.commitLocked(); err != nil {
		return err
	}
	if j.f != nil {
		// The rename replaced the inode under the old append handle;
		// reopen so future appends land in the committed file.
		j.f.Close()
		f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			j.f = nil
			return fmt.Errorf("dataset: reopening journal after commit: %w", err)
		}
		j.f = f
	}
	return nil
}

// commitLocked writes the compacted journal; caller holds j.mu (or is the
// sole owner during open).
func (j *Journal) commitLocked() error {
	keys := make([]string, 0, len(j.points))
	for k := range j.points {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return fsatomic.WriteFile(j.path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		if err := enc.Encode(journalHeader{Format: journalFormat, Config: j.fp}); err != nil {
			return err
		}
		for _, k := range keys {
			if err := enc.Encode(journalRecord{Key: k, Point: j.points[k]}); err != nil {
				return err
			}
		}
		return nil
	})
}

// Close commits and releases the journal. Further appends fail. Safe to
// call twice.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.f == nil {
		j.mu.Unlock()
		return nil
	}
	err := j.commitLocked()
	cerr := j.f.Close()
	j.f = nil
	j.mu.Unlock()
	if err != nil {
		return err
	}
	return cerr
}

// writeLine encodes one JSON line to the live file and fsyncs it.
func (j *Journal) writeLine(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("dataset: writing journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("dataset: syncing journal: %w", err)
	}
	return nil
}
