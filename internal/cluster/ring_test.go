package cluster

import (
	"fmt"
	"testing"

	"mapc/internal/serve"
)

func mustRing(t *testing.T, nodes []string, vnodes int) *Ring {
	t.Helper()
	r, err := NewRing(nodes, vnodes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate node accepted")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Error("empty node name accepted")
	}
}

// TestRingDeterministic pins that lookup is a pure function of (members,
// key): two independently built rings route every key identically — the
// property that lets a rebooted router keep the same shard map.
func TestRingDeterministic(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1 := mustRing(t, nodes, 0)
	r2 := mustRing(t, []string{"http://c:3", "http://a:1", "http://b:2"}, 0) // order must not matter
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("sift/%d+surf/%d", i, i*2)
		if r1.Lookup(k) != r2.Lookup(k) {
			t.Fatalf("key %q routes to %s vs %s depending on construction order", k, r1.Lookup(k), r2.Lookup(k))
		}
	}
}

// TestRingBalance checks vnode spreading: no replica owns a grossly
// disproportionate key share.
func TestRingBalance(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:2", "http://c:3"}
	r := mustRing(t, nodes, 0)
	counts := map[string]int{}
	const keys = 30000
	for i := 0; i < keys; i++ {
		counts[r.Lookup(fmt.Sprintf("key-%d", i))]++
	}
	mean := float64(keys) / float64(len(nodes))
	for n, c := range counts {
		ratio := float64(c) / mean
		if ratio < 0.5 || ratio > 1.5 {
			t.Errorf("node %s owns %d/%d keys (%.2fx the mean); ring is unbalanced: %v", n, c, keys, ratio, counts)
		}
	}
}

// TestRingStabilityUnderGrowth pins the consistent-hashing property: adding
// a node moves roughly 1/(n+1) of the keys, not all of them — the reason
// replica caches survive scale-out.
func TestRingStabilityUnderGrowth(t *testing.T) {
	before := mustRing(t, []string{"a", "b", "c"}, 0)
	after := mustRing(t, []string{"a", "b", "c", "d"}, 0)
	const keys = 20000
	moved := 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		ob, oa := before.Lookup(k), after.Lookup(k)
		if ob != oa {
			if oa != "d" {
				t.Fatalf("key %q moved %s→%s; growth must only move keys to the new node", k, ob, oa)
			}
			moved++
		}
	}
	frac := float64(moved) / keys
	if frac < 0.15 || frac > 0.35 {
		t.Errorf("adding 1 node to 3 moved %.1f%% of keys, want ~25%%", 100*frac)
	}
}

// TestLookupN pins fallback semantics: distinct nodes, owner first,
// clamped at the member count.
func TestLookupN(t *testing.T) {
	nodes := []string{"a", "b", "c"}
	r := mustRing(t, nodes, 0)
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%d", i)
		cands := r.LookupN(k, 10)
		if len(cands) != len(nodes) {
			t.Fatalf("LookupN clamped to %d, want %d", len(cands), len(nodes))
		}
		if cands[0] != r.Lookup(k) {
			t.Fatalf("LookupN[0]=%s != Lookup=%s", cands[0], r.Lookup(k))
		}
		seen := map[string]bool{}
		for _, c := range cands {
			if seen[c] {
				t.Fatalf("duplicate candidate %s in %v", c, cands)
			}
			seen[c] = true
		}
	}
	if got := r.LookupN("k", 0); got != nil {
		t.Errorf("LookupN(0) = %v, want nil", got)
	}
}

// TestCanonicalKeyRoutesPermutationsTogether is the sharding contract:
// every ordering of one multiset of members routes to the same replica.
func TestCanonicalKeyRoutesPermutationsTogether(t *testing.T) {
	r := mustRing(t, []string{"a", "b", "c", "d", "e"}, 0)
	perms := [][]serve.Member{
		{{Benchmark: "sift", Batch: 20}, {Benchmark: "surf", Batch: 40}, {Benchmark: "knn", Batch: 80}},
		{{Benchmark: "surf", Batch: 40}, {Benchmark: "knn", Batch: 80}, {Benchmark: "sift", Batch: 20}},
		{{Benchmark: "knn", Batch: 80}, {Benchmark: "sift", Batch: 20}, {Benchmark: "surf", Batch: 40}},
	}
	want := r.Lookup(serve.CanonicalKey(perms[0]))
	for i, p := range perms {
		if got := r.Lookup(serve.CanonicalKey(p)); got != want {
			t.Errorf("permutation %d routes to %s, permutation 0 to %s", i, got, want)
		}
	}
}
