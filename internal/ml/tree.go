package ml

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// TreeRegressor is a CART regression tree with mean-squared-error splits —
// the paper's predictor model (Section II-B3). Beyond Fit/Predict it exposes
// the decision-path introspection used for the Figure 10-12 analyses.
type TreeRegressor struct {
	// MaxDepth bounds the tree depth; 0 means unbounded.
	MaxDepth int
	// MinSamplesSplit is the smallest node size eligible for splitting.
	MinSamplesSplit int
	// MinSamplesLeaf is the smallest allowed leaf size.
	MinSamplesLeaf int
	// MinImpurityDecrease prunes splits whose weighted MSE reduction is
	// below this threshold.
	MinImpurityDecrease float64

	nodes    []treeNode
	nFeature int
	fitted   bool
}

// treeNode is one node in the flattened tree. Leaves have feature == -1.
type treeNode struct {
	feature   int     // split feature, or -1 for leaves
	threshold float64 // go left when x[feature] <= threshold
	left      int     // child indices into nodes
	right     int
	value     float64 // node prediction (mean of targets)
	samples   int
	impurity  float64 // node MSE
}

// NewTreeRegressor returns a tree with the defaults used throughout the
// reproduction: unbounded depth, leaves of at least one point, splits on at
// least two.
func NewTreeRegressor() *TreeRegressor {
	return &TreeRegressor{MinSamplesSplit: 2, MinSamplesLeaf: 1}
}

// Fit builds the tree on the dataset.
func (t *TreeRegressor) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if t.MinSamplesSplit < 2 {
		t.MinSamplesSplit = 2
	}
	if t.MinSamplesLeaf < 1 {
		t.MinSamplesLeaf = 1
	}
	t.nFeature = len(d.X[0])
	t.nodes = t.nodes[:0]
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	t.build(d, idx, 0)
	t.fitted = true
	return nil
}

// build grows the subtree for the points in idx and returns its node index.
func (t *TreeRegressor) build(d *Dataset, idx []int, depth int) int {
	mean, mse := meanMSE(d.Y, idx)
	self := len(t.nodes)
	t.nodes = append(t.nodes, treeNode{
		feature: -1, value: mean, samples: len(idx), impurity: mse,
	})

	if len(idx) < t.MinSamplesSplit || mse == 0 ||
		(t.MaxDepth > 0 && depth >= t.MaxDepth) {
		return self
	}

	// Zero-gain splits are allowed (as in scikit-learn): structure like
	// XOR only reveals its gain one level deeper. MinImpurityDecrease,
	// when set, prunes low-value splits.
	feat, thresh, gain := t.bestSplit(d, idx, mse)
	if feat < 0 || gain < t.MinImpurityDecrease || gain < -1e-9 {
		return self
	}

	var left, right []int
	for _, i := range idx {
		if d.X[i][feat] <= thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.MinSamplesLeaf || len(right) < t.MinSamplesLeaf {
		return self
	}
	l := t.build(d, left, depth+1)
	r := t.build(d, right, depth+1)
	t.nodes[self].feature = feat
	t.nodes[self].threshold = thresh
	t.nodes[self].left = l
	t.nodes[self].right = r
	return self
}

// bestSplit scans every feature and candidate threshold for the split that
// minimizes the weighted child MSE, returning the impurity decrease.
func (t *TreeRegressor) bestSplit(d *Dataset, idx []int, parentMSE float64) (int, float64, float64) {
	n := float64(len(idx))
	bestFeat, bestThresh, bestScore := -1, 0.0, math.Inf(1)

	order := make([]int, len(idx))
	for f := 0; f < t.nFeature; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return d.X[order[a]][f] < d.X[order[b]][f] })

		// Prefix sums enable O(1) MSE evaluation at every cut point:
		// MSE_left*nl + MSE_right*nr = (sumsq - sum²/nl) + ...
		var sumL, sumSqL float64
		var sumR, sumSqR float64
		for _, i := range order {
			sumR += d.Y[i]
			sumSqR += d.Y[i] * d.Y[i]
		}
		for k := 0; k+1 < len(order); k++ {
			y := d.Y[order[k]]
			sumL += y
			sumSqL += y * y
			sumR -= y
			sumSqR -= y * y
			xk := d.X[order[k]][f]
			xn := d.X[order[k+1]][f]
			if xk == xn {
				continue // cannot cut between equal values
			}
			nl, nr := float64(k+1), n-float64(k+1)
			if int(nl) < t.MinSamplesLeaf || int(nr) < t.MinSamplesLeaf {
				continue
			}
			score := (sumSqL - sumL*sumL/nl) + (sumSqR - sumR*sumR/nr)
			if score < bestScore {
				bestScore = score
				bestFeat = f
				bestThresh = (xk + xn) / 2
			}
		}
	}
	if bestFeat < 0 {
		return -1, 0, 0
	}
	gain := parentMSE - bestScore/n
	return bestFeat, bestThresh, gain
}

func meanMSE(y []float64, idx []int) (mean, mse float64) {
	n := float64(len(idx))
	if n == 0 {
		return 0, 0
	}
	var sum, sumSq float64
	for _, i := range idx {
		sum += y[i]
		sumSq += y[i] * y[i]
	}
	mean = sum / n
	mse = sumSq/n - mean*mean
	if mse < 0 {
		mse = 0 // numeric guard
	}
	return mean, mse
}

// Predict returns the tree's prediction for one feature vector.
func (t *TreeRegressor) Predict(x []float64) (float64, error) {
	leaf, err := t.traverse(x, nil)
	if err != nil {
		return 0, err
	}
	return t.nodes[leaf].value, nil
}

// PredictAll predicts every row of X.
func (t *TreeRegressor) PredictAll(X [][]float64) ([]float64, error) {
	out := make([]float64, len(X))
	for i, x := range X {
		v, err := t.Predict(x)
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// DecisionStep is one internal node visited while predicting a point.
type DecisionStep struct {
	// Feature is the index of the feature compared at this node.
	Feature int
	// Threshold is the comparison constant.
	Threshold float64
	// WentLeft records the branch taken (x[Feature] <= Threshold).
	WentLeft bool
}

// DecisionPath returns the sequence of internal-node decisions made while
// predicting x — the per-test-point paths analysed in Figures 10-12.
func (t *TreeRegressor) DecisionPath(x []float64) ([]DecisionStep, error) {
	var path []DecisionStep
	if _, err := t.traverse(x, &path); err != nil {
		return nil, err
	}
	return path, nil
}

// traverse walks from the root to a leaf, optionally recording the path,
// and returns the leaf's node index.
func (t *TreeRegressor) traverse(x []float64, path *[]DecisionStep) (int, error) {
	if !t.fitted {
		return 0, errors.New("ml: tree not fitted")
	}
	if len(x) != t.nFeature {
		return 0, fmt.Errorf("ml: feature vector width %d, tree expects %d", len(x), t.nFeature)
	}
	cur := 0
	for {
		nd := &t.nodes[cur]
		if nd.feature < 0 {
			return cur, nil
		}
		left := x[nd.feature] <= nd.threshold
		if path != nil {
			*path = append(*path, DecisionStep{
				Feature: nd.feature, Threshold: nd.threshold, WentLeft: left,
			})
		}
		if left {
			cur = nd.left
		} else {
			cur = nd.right
		}
	}
}

// FeatureImportances returns impurity-based importances normalized to sum
// to 1 (scikit-learn's definition): each split contributes its weighted
// impurity decrease to its feature.
func (t *TreeRegressor) FeatureImportances() ([]float64, error) {
	if !t.fitted {
		return nil, errors.New("ml: tree not fitted")
	}
	imp := make([]float64, t.nFeature)
	total := float64(t.nodes[0].samples)
	for i := range t.nodes {
		nd := &t.nodes[i]
		if nd.feature < 0 {
			continue
		}
		l, r := &t.nodes[nd.left], &t.nodes[nd.right]
		decrease := float64(nd.samples)*nd.impurity -
			float64(l.samples)*l.impurity - float64(r.samples)*r.impurity
		imp[nd.feature] += decrease / total
	}
	var sum float64
	for _, v := range imp {
		sum += v
	}
	if sum > 0 {
		for i := range imp {
			imp[i] /= sum
		}
	}
	return imp, nil
}

// NodeCount returns the number of nodes in the fitted tree.
func (t *TreeRegressor) NodeCount() int { return len(t.nodes) }

// NumFeatures returns the input width the fitted tree expects (0 before
// Fit). Persistence layers use it to cross-check that a serialized tree
// agrees with the feature columns stored alongside it.
func (t *TreeRegressor) NumFeatures() int { return t.nFeature }

// Depth returns the depth of the fitted tree (a lone root has depth 0).
func (t *TreeRegressor) Depth() int {
	if len(t.nodes) == 0 {
		return 0
	}
	var walk func(n, d int) int
	walk = func(n, d int) int {
		nd := &t.nodes[n]
		if nd.feature < 0 {
			return d
		}
		l := walk(nd.left, d+1)
		r := walk(nd.right, d+1)
		if l > r {
			return l
		}
		return r
	}
	return walk(0, 0)
}

// Export renders the tree as indented text using the given feature names,
// supporting the manual decision-path analysis of Section VI-C.
func (t *TreeRegressor) Export(featureNames []string) string {
	if len(t.nodes) == 0 {
		return "(unfitted tree)"
	}
	var b strings.Builder
	name := func(f int) string {
		if f >= 0 && f < len(featureNames) {
			return featureNames[f]
		}
		return fmt.Sprintf("x[%d]", f)
	}
	var walk func(n, depth int)
	walk = func(n, depth int) {
		nd := &t.nodes[n]
		pad := strings.Repeat("  ", depth)
		if nd.feature < 0 {
			fmt.Fprintf(&b, "%sleaf value=%.6g samples=%d\n", pad, nd.value, nd.samples)
			return
		}
		fmt.Fprintf(&b, "%sif %s <= %.6g (samples=%d):\n", pad, name(nd.feature), nd.threshold, nd.samples)
		walk(nd.left, depth+1)
		fmt.Fprintf(&b, "%selse:\n", pad)
		walk(nd.right, depth+1)
	}
	walk(0, 0)
	return b.String()
}
