package trace

import (
	"strings"
	"testing"

	"mapc/internal/isa"
)

func validOpts() PhaseOpts {
	return PhaseOpts{Pattern: Sequential, Reuse: 0.5, Parallelism: 10, VectorWidth: 1}
}

func TestRecorderBasicLifecycle(t *testing.T) {
	r := NewRecorder("bench", 20)
	r.BeginPhase("p1", 1024, validOpts())
	r.ALU(10)
	r.Mem(5)
	r.EndPhase()
	r.BeginPhase("p2", 2048, validOpts())
	r.FP(3)
	r.EndPhase()

	w, err := r.Workload()
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(w.Phases))
	}
	if w.Phases[0].Counts[isa.ALU] != 10 || w.Phases[0].Counts[isa.MEM] != 5 {
		t.Errorf("phase 0 counts %v", w.Phases[0].Counts)
	}
	if w.Instructions() != 18 {
		t.Errorf("Instructions() = %d, want 18", w.Instructions())
	}
	if w.Benchmark != "bench" || w.BatchSize != 20 {
		t.Errorf("workload identity %q/%d", w.Benchmark, w.BatchSize)
	}
}

func TestRecorderConvenienceCounters(t *testing.T) {
	r := NewRecorder("b", 1)
	r.BeginPhase("p", 64, validOpts())
	r.SSE(1)
	r.ALU(2)
	r.Mem(3)
	r.FP(4)
	r.Stack(5)
	r.Str(6)
	r.Shift(7)
	r.Control(8)
	r.EndPhase()
	w, err := r.Workload()
	if err != nil {
		t.Fatal(err)
	}
	c := w.TotalCounts()
	want := isa.Counts{1, 2, 3, 4, 5, 6, 7, 8}
	if c != want {
		t.Fatalf("counts = %v, want %v", c, want)
	}
}

func TestRecorderNestedPhaseFails(t *testing.T) {
	r := NewRecorder("b", 1)
	r.BeginPhase("a", 64, validOpts())
	r.BeginPhase("b", 64, validOpts())
	r.EndPhase()
	if _, err := r.Workload(); err == nil {
		t.Fatal("nested BeginPhase not reported")
	}
}

func TestRecorderCountOutsidePhaseFails(t *testing.T) {
	r := NewRecorder("b", 1)
	r.ALU(1)
	if _, err := r.Workload(); err == nil {
		t.Fatal("count outside phase not reported")
	}
}

func TestRecorderUnbalancedEndFails(t *testing.T) {
	r := NewRecorder("b", 1)
	r.EndPhase()
	if _, err := r.Workload(); err == nil {
		t.Fatal("unbalanced EndPhase not reported")
	}
}

func TestRecorderOpenPhaseAtFinalizeFails(t *testing.T) {
	r := NewRecorder("b", 1)
	r.BeginPhase("open", 64, validOpts())
	if _, err := r.Workload(); err == nil {
		t.Fatal("open phase at Workload() not reported")
	}
}

func TestRecorderEmptyWorkloadFails(t *testing.T) {
	r := NewRecorder("b", 1)
	if _, err := r.Workload(); err == nil {
		t.Fatal("empty workload not reported")
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.BeginPhase("p", 64, validOpts())
	r.ALU(1)
	r.Mem(1)
	r.EndPhase() // must not panic
}

func TestPhaseValidate(t *testing.T) {
	base := Phase{Name: "p", Footprint: 64, Pattern: Sequential,
		Reuse: 0.5, Parallelism: 1, VectorWidth: 1}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid phase rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Phase)
	}{
		{"empty name", func(p *Phase) { p.Name = "" }},
		{"negative footprint", func(p *Phase) { p.Footprint = -1 }},
		{"reuse > 1", func(p *Phase) { p.Reuse = 1.5 }},
		{"reuse < 0", func(p *Phase) { p.Reuse = -0.1 }},
		{"zero parallelism", func(p *Phase) { p.Parallelism = 0 }},
		{"zero vector width", func(p *Phase) { p.VectorWidth = 0 }},
		{"invalid pattern", func(p *Phase) { p.Pattern = Pattern(99) }},
		{"strided without stride", func(p *Phase) { p.Pattern = Strided; p.StrideBytes = 0 }},
	}
	for _, tc := range cases {
		p := base
		tc.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate() accepted invalid phase", tc.name)
		}
	}
}

func TestWorkloadValidate(t *testing.T) {
	good := &Workload{Benchmark: "b", BatchSize: 1, Phases: []Phase{{
		Name: "p", Footprint: 64, Pattern: Sequential, Reuse: 0,
		Parallelism: 1, VectorWidth: 1,
	}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid workload rejected: %v", err)
	}
	bad := []*Workload{
		{Benchmark: "", BatchSize: 1, Phases: good.Phases},
		{Benchmark: "b", BatchSize: 0, Phases: good.Phases},
		{Benchmark: "b", BatchSize: 1},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("bad workload %d accepted", i)
		}
	}
}

func TestWorkloadCloneIsDeep(t *testing.T) {
	w := &Workload{Benchmark: "b", BatchSize: 2, TransferBytes: 99,
		Phases: []Phase{{Name: "p", Footprint: 64, Parallelism: 1, VectorWidth: 1}}}
	c := w.Clone()
	if c.TransferBytes != 99 {
		t.Error("Clone dropped TransferBytes")
	}
	c.Phases[0].Name = "mutated"
	if w.Phases[0].Name != "p" {
		t.Error("Clone shares phase storage with the original")
	}
}

func TestMaxFootprint(t *testing.T) {
	w := &Workload{Benchmark: "b", BatchSize: 1, Phases: []Phase{
		{Name: "a", Footprint: 10, Parallelism: 1, VectorWidth: 1},
		{Name: "b", Footprint: 99, Parallelism: 1, VectorWidth: 1},
		{Name: "c", Footprint: 5, Parallelism: 1, VectorWidth: 1},
	}}
	if got := w.MaxFootprint(); got != 99 {
		t.Errorf("MaxFootprint = %d", got)
	}
}

func TestLaunchCount(t *testing.T) {
	p := Phase{}
	if p.LaunchCount() != 1 {
		t.Errorf("zero Launches -> LaunchCount %d", p.LaunchCount())
	}
	p.Launches = 7
	if p.LaunchCount() != 7 {
		t.Errorf("LaunchCount = %d", p.LaunchCount())
	}
}

func TestPatternString(t *testing.T) {
	for p, want := range map[Pattern]string{
		Sequential: "sequential", Strided: "strided",
		Windowed: "windowed", Random: "random",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", int(p), p.String())
		}
	}
	if s := Pattern(42).String(); !strings.Contains(s, "42") {
		t.Errorf("invalid pattern String() = %q", s)
	}
}

func TestWorkloadString(t *testing.T) {
	w := &Workload{Benchmark: "sift", BatchSize: 20, Phases: []Phase{
		{Name: "p", Parallelism: 1, VectorWidth: 1},
	}}
	s := w.String()
	if !strings.Contains(s, "sift") || !strings.Contains(s, "batch=20") {
		t.Errorf("String() = %q", s)
	}
}
