// Command mapc-datagen generates the 91-run training corpus of Section V-B
// and writes it as CSV (features + target) to stdout or a file.
//
// Generation is crash-safe when a checkpoint journal is enabled: every
// completed measurement point is durably appended to the journal before
// the run proceeds, SIGINT/SIGTERM stop the worker pool cleanly (in-flight
// measurements finish and commit, then the journal is flushed), and a
// later -resume run re-measures only the missing bags. The resumed corpus
// is bit-for-bit identical to an uninterrupted run at any worker count.
//
// Usage:
//
//	mapc-datagen                                  # CSV to stdout
//	mapc-datagen -o corpus.csv                    # CSV to a file
//	mapc-datagen -o corpus.csv -checkpoint corpus.journal   # crash-safe
//	mapc-datagen -o corpus.csv -checkpoint corpus.journal -resume  # continue
//	mapc-datagen -fidelity fast -oracle 0.1 -max-oracle-err 0.05   # analytic tier, exactness-gated
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"mapc/internal/dataset"
	"mapc/internal/features"
	"mapc/internal/phasesum"
	"mapc/internal/profiling"
)

// exitInterrupted is the exit code for a clean signal-triggered stop with
// a flushed journal (128+SIGINT, the conventional shell encoding).
const exitInterrupted = 130

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	workers := flag.Int("workers", 0, "measurement worker goroutines (0 = NumCPU, 1 = serial); output is identical for every value")
	simCacheMB := flag.Int("simcache-mb", dataset.DefaultSimCacheMB, "simulation memo budget in MiB (0 = off); output is identical at every budget")
	k := flag.Int("k", 2, "bag size: applications co-scheduled per data point (2 = the paper's pair corpus, up to 8)")
	checkpoint := flag.String("checkpoint", "", "journal file for crash-safe generation: completed points are committed here and survive kills")
	resume := flag.Bool("resume", false, "continue from an existing -checkpoint journal, re-measuring only missing bags")
	benchmarks := flag.String("benchmarks", "", "comma-separated benchmark subset (empty = full Table-II suite)")
	batches := flag.String("batches", "", "comma-separated batch sizes (empty = 20,40,80,160,320)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of corpus generation to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a post-GC heap profile to this file on exit")
	fidelity := flag.String("fidelity", "exact", "co-run fidelity tier: exact (cycle-level replay), mixed (analytic when confident, exact otherwise), fast (always analytic); isolated runs are exact at every tier")
	shares := flag.String("shares", "", "MPS share profile for every shared GPU co-run: k slash- or comma-separated relative weights, e.g. 0.7/0.2/0.1 (empty = equal split)")
	scenarios := flag.String("scenarios", "", "run a k × share-skew scenario matrix instead of one corpus: semicolon-separated cells ('2;2:0.7/0.3;4:0.85/0.05/0.05/0.05'), or 'default' for the benchmarked skew suite")
	scenariosJSON := flag.String("scenarios-json", "", "with -scenarios, also write the matrix report as JSON to this file")
	oracleFrac := flag.Float64("oracle", 0, "differential oracle: re-measure this fraction of bags through the exact simulators and report relative-error bounds (0 = off)")
	oracleSeed := flag.Uint64("oracle-seed", 1, "seed selecting the oracle's bag sample (reproducible per (config, fraction, seed))")
	maxOracleErr := flag.Float64("max-oracle-err", 0, "exit 1 when the oracle's max relative error exceeds this bound (0 = report only)")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "mapc-datagen: profiling:", err)
		}
	}()

	cfg := dataset.DefaultConfig()
	cfg.Workers = *workers
	cfg.SimCacheMB = *simCacheMB
	cfg.K = *k
	fid, err := phasesum.ParseFidelity(*fidelity)
	if err != nil {
		fatal(err)
	}
	cfg.Fidelity = fid
	if *shares != "" {
		cfg.Shares, err = dataset.ParseShares(*shares)
		if err != nil {
			fatal(fmt.Errorf("parsing -shares: %w", err))
		}
	}
	if *benchmarks != "" {
		cfg.Benchmarks = splitList(*benchmarks)
	}
	if *batches != "" {
		bs, err := parseInts(*batches)
		if err != nil {
			fatal(fmt.Errorf("parsing -batches: %w", err))
		}
		cfg.BatchSizes = bs
		if len(bs) <= 2 {
			cfg.MixedPairs = 0 // mixed-batch pairs need >= 3 sizes
		}
	}
	if *scenarios != "" {
		if *shares != "" {
			fatal(errors.New("-scenarios cells carry their own share profiles; drop -shares"))
		}
		runScenarioMatrix(cfg, *scenarios, *scenariosJSON, *oracleFrac, *oracleSeed, *maxOracleErr)
		return
	}

	gen, err := dataset.NewGenerator(cfg)
	if err != nil {
		fatal(err)
	}

	if *resume && *checkpoint == "" {
		fatal(errors.New("-resume requires -checkpoint"))
	}

	// Throughput accounting: prefilled counts the points replayed from a
	// resumed journal — they cost no simulation, so the points/sec summary
	// excludes them from both numerator and denominator. Counting them used
	// to make resumed runs look misleadingly fast.
	var (
		corpus    *dataset.Corpus
		prefilled int
	)
	measureStart := time.Now()
	if *checkpoint == "" {
		corpus, err = gen.Generate()
		if err != nil {
			fatal(err)
		}
	} else {
		corpus, prefilled = generateCheckpointed(gen, cfg, *checkpoint, *resume)
	}
	measureDur := time.Since(measureStart)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if err := writeCSV(w, corpus); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mapc-datagen: wrote %d data points (%d features + target)\n",
		len(corpus.Points), len(corpus.FeatureNames))
	if fresh := len(corpus.Points) - prefilled; fresh > 0 && measureDur > 0 {
		msg := fmt.Sprintf("mapc-datagen: measured %d fresh point(s) in %v (%.2f points/sec",
			fresh, measureDur.Round(time.Millisecond), float64(fresh)/measureDur.Seconds())
		if prefilled > 0 {
			msg += fmt.Sprintf("; %d journal-prefilled point(s) excluded", prefilled)
		}
		fmt.Fprintln(os.Stderr, msg+")")
	}
	if fs := gen.FidelityStats(); fs.AnalyticRuns+fs.ExactFallbacks > 0 {
		msg := fmt.Sprintf("mapc-datagen: fidelity %s: %d analytic co-run(s), %d exact fallback(s)",
			fs.Fidelity, fs.AnalyticRuns, fs.ExactFallbacks)
		if fs.ExactFallbacks > 0 {
			msg += fmt.Sprintf(" (low-confidence %d, sub-SM-share %d, bandwidth-gate %d)",
				fs.FallbackLowConfidence, fs.FallbackSubSMShare, fs.FallbackBandwidthGate)
		}
		fmt.Fprintln(os.Stderr, msg)
	}
	if st := gen.SimCacheStats(); st.Hits+st.Misses > 0 {
		fmt.Fprintf(os.Stderr, "mapc-datagen: simcache: %.1f%% hit rate (%d hits, %d misses, %d evictions, %.1f MiB resident)\n",
			100*st.HitRate(), st.Hits, st.Misses, st.Evictions, float64(st.Bytes)/(1<<20))
	}

	if *oracleFrac > 0 {
		rep, err := gen.RunOracle(*oracleFrac, *oracleSeed)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr,
			"mapc-datagen: oracle (%s, %d/%d bags, seed %d): cpu max %.4g mean %.4g, gpu max %.4g mean %.4g rel. err\n",
			rep.Fidelity, rep.Sampled, rep.Total, *oracleSeed,
			rep.MaxRelErrCPU, rep.MeanRelErrCPU, rep.MaxRelErrGPU, rep.MeanRelErrGPU)
		if *maxOracleErr > 0 && !rep.Within(*maxOracleErr) {
			fatal(fmt.Errorf("oracle max relative error exceeds bound %g", *maxOracleErr))
		}
	}
}

// runScenarioMatrix generates every cell of a k × share-skew matrix,
// prints a per-cell table (coverage, throughput, oracle error) to stdout
// and optionally writes the full report as JSON. -max-oracle-err gates the
// worst cell, so a CI invocation fails loudly when skew pushes the
// analytic tier out of its exactness envelope.
func runScenarioMatrix(cfg dataset.Config, spec, jsonPath string, oracleFrac float64, oracleSeed uint64, maxOracleErr float64) {
	var (
		specs []dataset.ScenarioSpec
		err   error
	)
	if spec == "default" {
		specs = dataset.DefaultSkewScenarios()
	} else if specs, err = dataset.ParseScenarios(spec); err != nil {
		fatal(fmt.Errorf("parsing -scenarios: %w", err))
	}
	rep, err := dataset.RunScenarios(cfg, specs, oracleFrac, oracleSeed)
	if err != nil {
		fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\tpoints\tpts/sec\tanalytic\tfallbacks (lowconf/share/bw)\toracle max gpu err")
	for _, s := range rep.Scenarios {
		oracle := "-"
		if s.Oracle != nil {
			oracle = strconv.FormatFloat(s.Oracle.MaxRelErrGPU, 'g', 3, 64)
		}
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f%%\t%d/%d/%d\t%s\n",
			s.Name, s.Points, s.PointsPerSec, 100*s.AnalyticCoverage,
			s.FallbackLowConfidence, s.FallbackSubSMShare, s.FallbackBandwidthGate, oracle)
	}
	if err := tw.Flush(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mapc-datagen: scenarios (%s): min analytic coverage %.1f%%, max oracle gpu err %.4g\n",
		rep.Fidelity, 100*rep.MinAnalyticCoverage(), rep.MaxRelErrGPU())

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if maxOracleErr > 0 && rep.MaxRelErrGPU() > maxOracleErr {
		fatal(fmt.Errorf("scenario oracle max relative error %.4g exceeds bound %g", rep.MaxRelErrGPU(), maxOracleErr))
	}
}

// generateCheckpointed runs journaled generation with clean SIGINT/SIGTERM
// handling: on a signal the worker pool stops claiming bags, in-flight
// measurements finish and commit, the journal is flushed through an atomic
// rename, and the process exits with status 130 and resume instructions.
// It only returns on full success, along with the number of points that
// were already journaled before this run started (resume pre-fill).
func generateCheckpointed(gen *dataset.Generator, cfg dataset.Config, path string, resume bool) (*dataset.Corpus, int) {
	var (
		j   *dataset.Journal
		err error
	)
	if resume {
		j, err = dataset.OpenJournal(path, cfg)
	} else {
		j, err = dataset.CreateJournal(path, cfg)
	}
	if err != nil {
		fatal(err)
	}
	bags, err := gen.Bags()
	if err != nil {
		fatal(err)
	}
	prefilled := j.Len()
	if resume {
		msg := fmt.Sprintf("mapc-datagen: resuming: %d/%d points journaled in %s", prefilled, len(bags), path)
		if d := j.Dropped(); d > 0 {
			msg += fmt.Sprintf(" (%d torn record(s) discarded)", d)
		}
		fmt.Fprintln(os.Stderr, msg)
	} else {
		fmt.Fprintf(os.Stderr, "mapc-datagen: checkpointing %d points to %s\n", len(bags), path)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	corpus, err := gen.Resume(ctx, j)
	if err != nil {
		if cerr := j.Close(); cerr != nil { // flush: atomic commit + close
			fmt.Fprintln(os.Stderr, "mapc-datagen: closing journal:", cerr)
		}
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr,
				"mapc-datagen: interrupted; journal %s holds %d/%d points — rerun with -checkpoint %s -resume to continue\n",
				path, j.Len(), len(bags), path)
			os.Exit(exitInterrupted)
		}
		fatal(err)
	}
	if err := j.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mapc-datagen: journal complete (%d points); safe to delete %s\n", j.Len(), path)
	return corpus, prefilled
}

func writeCSV(w io.Writer, corpus *dataset.Corpus) error {
	// The member-column count follows the corpus's bag size (recovered
	// from the feature width); at k=2 the header and rows are byte-for-byte
	// the legacy pair CSV.
	k, err := features.BagSizeForWidth(len(corpus.FeatureNames))
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	var header []string
	for i := 0; i < k; i++ {
		sfx := string(rune('a' + i))
		header = append(header, "bench_"+sfx, "batch_"+sfx)
	}
	header = append(header, "homogeneous")
	header = append(header, corpus.FeatureNames...)
	header = append(header, "gpu_bag_time_sec")
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range corpus.Points {
		p := &corpus.Points[i]
		var row []string
		for _, m := range p.Members {
			row = append(row, m.Benchmark, strconv.Itoa(m.Batch))
		}
		row = append(row, strconv.FormatBool(p.Homogeneous))
		for _, v := range p.X {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		row = append(row, strconv.FormatFloat(p.Y, 'g', -1, 64))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mapc-datagen:", err)
	os.Exit(1)
}
