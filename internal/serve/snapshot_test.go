package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"mapc/internal/dataset"
)

// snapPredict asks the handler for one bag and returns the raw response.
func snapPredict(t *testing.T, h http.Handler, body string) string {
	t.Helper()
	rr := doJSON(t, h, http.MethodPost, "/v1/predict", body)
	if rr.Code != http.StatusOK {
		t.Fatalf("predict answered %d: %s", rr.Code, rr.Body)
	}
	return rr.Body.String()
}

// TestSnapshotWarmStartBitIdentical round-trips the feature cache through
// a disk snapshot into a second server whose simulator is disabled, and
// asserts the warmed replica answers byte-identical predictions without
// ever simulating — the bit-exactness contract of the warm start (JSON
// encodes float64 with the shortest round-tripping representation).
func TestSnapshotWarmStartBitIdentical(t *testing.T) {
	s1 := newTestServer(t, nil)
	h1 := s1.Handler()
	bodies := []string{
		`{"a":{"benchmark":"sift","batch":20},"b":{"benchmark":"surf","batch":40}}`,
		`{"a":{"benchmark":"surf","batch":20},"b":{"benchmark":"surf","batch":20}}`,
		`{"bags":[{"members":[{"benchmark":"sift","batch":40},{"benchmark":"sift","batch":20}]}]}`,
	}
	want := make([]string, len(bodies))
	for i, b := range bodies {
		want[i] = snapPredict(t, h1, b)
	}

	path := filepath.Join(t.TempDir(), "features.snap")
	if err := s1.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, nil)
	// A warmed replica must not need its simulator for the snapshotted
	// working set: any compute is the test failing.
	s2.cache.compute = func(bag []dataset.Member) ([]float64, float64, error) {
		t.Errorf("warmed replica simulated bag %v", bag)
		return nil, 0, nil
	}
	seeded, err := s2.LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if wantN := s1.cache.Len(); seeded != wantN {
		t.Fatalf("seeded %d entries, source cache holds %d", seeded, wantN)
	}
	h2 := s2.Handler()
	for i, b := range bodies {
		got := snapPredict(t, h2, b)
		// The warmed replica answers from published entries, so its
		// "cached" field legitimately differs from the cold source's first
		// pass; everything else must match byte-for-byte.
		norm := func(s string) string { return strings.ReplaceAll(s, `"cached": true`, `"cached": false`) }
		if norm(got) != norm(want[i]) {
			t.Errorf("bag %d:\n  cold source: %s\n  warm replica: %s", i, want[i], got)
		}
		if !strings.Contains(got, `"cached": true`) {
			t.Errorf("bag %d: warmed replica did not answer from cache: %s", i, got)
		}
	}
}

// TestSeedSnapshotRejectsMismatches pins the validation: a snapshot from a
// different model shape or scheme must not seed meaningless vectors.
func TestSeedSnapshotRejectsMismatches(t *testing.T) {
	s := newTestServer(t, nil)
	good := s.Snapshot()
	if len(good.Entries) != 0 {
		t.Fatalf("fresh server snapshot carries %d entries", len(good.Entries))
	}
	width := s.cfg.Model.NumFeatures()
	entry := SnapshotEntry{Key: "sift/20+surf/20", X: make([]float64, width), Fairness: 0.5}

	cases := []struct {
		name    string
		mutate  func(*Snapshot)
		wantSub string
	}{
		{"wrong format", func(sn *Snapshot) { sn.Format = "mapc-other-v9" }, "format"},
		{"wrong scheme", func(sn *Snapshot) { sn.ModelScheme = "nosuch" }, "scheme"},
		{"wrong k", func(sn *Snapshot) { sn.K = 7 }, "does not match"},
		{"wrong width", func(sn *Snapshot) { sn.Width = width + 1 }, "does not match"},
		{"wrong shares", func(sn *Snapshot) { sn.Shares = "0.7/0.3" }, "share profile"},
		{"empty key", func(sn *Snapshot) { sn.Entries = []SnapshotEntry{{X: make([]float64, width)}} }, "empty key"},
		{"short vector", func(sn *Snapshot) { sn.Entries = []SnapshotEntry{{Key: "k", X: make([]float64, 3)}} }, "features"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snap := good
			snap.Entries = []SnapshotEntry{entry}
			tc.mutate(&snap)
			if _, err := s.SeedSnapshot(&snap); err == nil {
				t.Fatal("mismatched snapshot seeded without error")
			} else if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}

	snap := good
	snap.Entries = []SnapshotEntry{entry}
	if n, err := s.SeedSnapshot(&snap); err != nil || n != 1 {
		t.Fatalf("valid snapshot: seeded=%d err=%v", n, err)
	}
}

// TestWarmFromPeerAndPeerFill exercises the two HTTP warm paths end to
// end against a real peer over httptest: snapshot pull at join, then
// per-key peer fill on miss.
func TestWarmFromPeerAndPeerFill(t *testing.T) {
	peer := newTestServer(t, nil)
	hp := peer.Handler()
	hot := `{"a":{"benchmark":"sift","batch":20},"b":{"benchmark":"surf","batch":20}}`
	warmOnly := `{"a":{"benchmark":"sift","batch":40},"b":{"benchmark":"surf","batch":40}}`
	wantHot := snapPredict(t, hp, hot)
	ts := httptest.NewServer(hp)
	defer ts.Close()

	fresh := newTestServer(t, nil)
	var computes atomic.Int64
	realCompute := fresh.cache.compute
	fresh.cache.compute = func(bag []dataset.Member) ([]float64, float64, error) {
		computes.Add(1)
		return realCompute(bag)
	}

	// Join-time warm start: pull the peer's whole snapshot.
	n, err := fresh.WarmFromPeer(context.Background(), nil, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if n != peer.cache.Len() {
		t.Fatalf("warmed %d entries, peer holds %d", n, peer.cache.Len())
	}
	// Compare modulo the cached flag, which legitimately differs between a
	// cold first pass and a warmed replica; the numbers must be byte-equal.
	norm := func(s string) string {
		s = strings.ReplaceAll(s, `"cached": true`, `"cached": ?`)
		return strings.ReplaceAll(s, `"cached": false`, `"cached": ?`)
	}
	hf := fresh.Handler()
	got := snapPredict(t, hf, hot)
	if norm(got) != norm(wantHot) {
		t.Errorf("warmed prediction differs:\n  peer:  %s\n  fresh: %s", wantHot, got)
	}
	if computes.Load() != 0 {
		t.Fatalf("warmed replica simulated %d times for the snapshotted bag", computes.Load())
	}

	// Peer fill: the peer computes a new bag after the snapshot was taken;
	// the fresh replica's miss is answered by the peer's published entry,
	// not a local simulation.
	wantWarm := snapPredict(t, hp, warmOnly)
	fresh.SetPeerFill(nil, []string{ts.URL}, 0)
	got = snapPredict(t, hf, warmOnly)
	if norm(got) != norm(wantWarm) {
		t.Errorf("peer-filled prediction differs:\n  peer:  %s\n  fresh: %s", wantWarm, got)
	}
	if computes.Load() != 0 {
		t.Fatalf("peer fill fell through to %d local simulations", computes.Load())
	}
	if fresh.Metrics().PeerFillHits() != 1 {
		t.Errorf("peer-fill hits = %d, want 1", fresh.Metrics().PeerFillHits())
	}

	// A bag nobody holds falls through to the local simulator.
	cold := `{"a":{"benchmark":"sift","batch":80},"b":{"benchmark":"surf","batch":80}}`
	_ = snapPredict(t, hf, cold)
	if computes.Load() != 1 {
		t.Fatalf("cold bag ran %d local simulations, want 1", computes.Load())
	}
}

// TestCacheEntryEndpoint pins /v1/cache/entry semantics: published entries
// only, 404 otherwise, 400 without a key.
func TestCacheEntryEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	snapPredict(t, h, `{"a":{"benchmark":"sift","batch":20},"b":{"benchmark":"surf","batch":20}}`)

	// Bag keys carry "+" separators, so the query parameter must be
	// escaped — exactly what fetchPeerEntry does on the client side.
	key := CanonicalKey([]Member{{Benchmark: "surf", Batch: 20}, {Benchmark: "sift", Batch: 20}})
	rr := doJSON(t, h, http.MethodGet, "/v1/cache/entry?key="+url.QueryEscape(key), "")
	if rr.Code != http.StatusOK {
		t.Fatalf("published entry answered %d: %s", rr.Code, rr.Body)
	}
	if !strings.Contains(rr.Body.String(), `"x": [`) {
		t.Errorf("entry response carries no vector: %s", rr.Body)
	}

	if rr := doJSON(t, h, http.MethodGet, "/v1/cache/entry?key=nosuch/1%2Bnosuch/2", ""); rr.Code != http.StatusNotFound {
		t.Errorf("absent entry answered %d", rr.Code)
	}
	if rr := doJSON(t, h, http.MethodGet, "/v1/cache/entry", ""); rr.Code != http.StatusBadRequest {
		t.Errorf("missing key answered %d", rr.Code)
	}
	if rr := doJSON(t, h, http.MethodPost, "/v1/cache/entry?key="+key, "{}"); rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST answered %d", rr.Code)
	}
}
