package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mapc/internal/serve"
)

// Router defaults.
const (
	DefaultRouterTimeout = 60 * time.Second
	// DefaultAttemptTimeout bounds one forward to one replica — well under
	// the end-to-end Timeout, so a black-holed replica costs one attempt's
	// worth of latency before failover instead of the whole budget.
	DefaultAttemptTimeout = 10 * time.Second
	// DefaultRetryBudget is how many re-forwards (beyond each bag's first
	// attempt) one client request may spend across all its bags.
	DefaultRetryBudget = 8
	// DefaultRetryBaseDelay / DefaultRetryMaxDelay shape the jittered
	// exponential backoff between retry rounds: base*2^round, capped at
	// max, jittered uniformly over the upper half.
	DefaultRetryBaseDelay = 25 * time.Millisecond
	DefaultRetryMaxDelay  = 1 * time.Second
	routerMaxBodyBytes    = 1 << 20
)

// RouterConfig configures the sharding router.
type RouterConfig struct {
	// Pool is the replica membership; required.
	Pool *Pool
	// Client forwards prediction sub-batches; nil means a fresh client
	// with no global timeout (per-request contexts bound each forward).
	Client *http.Client
	// Timeout bounds one client request end-to-end across all forwards
	// and retries; 0 means DefaultRouterTimeout.
	Timeout time.Duration
	// AttemptTimeout bounds a single forward to a single replica; 0 means
	// DefaultAttemptTimeout. The remaining attempt budget is propagated to
	// the replica in the X-Mapc-Deadline header.
	AttemptTimeout time.Duration
	// RetryBudget caps failed forward attempts (beyond each group's first
	// try) per client request; 0 means DefaultRetryBudget. A hedge spends
	// one unit too. When the budget runs out with bags still unanswered
	// the request fails 502 instead of hammering a sick tier.
	RetryBudget int
	// RetryBaseDelay / RetryMaxDelay shape the backoff between retry
	// rounds; 0 means the defaults.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// HedgeDelay, when positive, enables tail-latency hedging for
	// single-bag requests: if the first replica hasn't answered within
	// HedgeDelay, a second attempt is raced against it on the next
	// candidate and the first answer wins. Each hedge spends one retry
	// budget unit. 0 disables hedging.
	HedgeDelay time.Duration
	// Logf reports forwarding errors; nil discards.
	Logf func(format string, args ...any)
}

// Router shards /v1/predict bags across replicas by canonical bag key and
// reassembles the answers in request order. It owns no model: every
// prediction comes verbatim from a replica, so routed answers are
// bit-identical to asking the owning replica directly.
type Router struct {
	cfg     RouterConfig
	pool    *Pool
	metrics *routerMetrics
	start   time.Time
}

// NewRouter validates the config and returns a ready router.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Pool == nil {
		return nil, errors.New("cluster: router needs a pool")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultRouterTimeout
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = DefaultAttemptTimeout
	}
	if cfg.AttemptTimeout > cfg.Timeout {
		cfg.AttemptTimeout = cfg.Timeout
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = DefaultRetryBudget
	}
	if cfg.RetryBaseDelay <= 0 {
		cfg.RetryBaseDelay = DefaultRetryBaseDelay
	}
	if cfg.RetryMaxDelay <= 0 {
		cfg.RetryMaxDelay = DefaultRetryMaxDelay
	}
	if cfg.RetryMaxDelay < cfg.RetryBaseDelay {
		cfg.RetryMaxDelay = cfg.RetryBaseDelay
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Router{cfg: cfg, pool: cfg.Pool, metrics: newRouterMetrics(), start: time.Now()}, nil
}

// Handler returns the router's HTTP mux.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", rt.handlePredict)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	return mux
}

// Pool exposes the membership (for probe wiring in cmd/mapc-router).
func (rt *Router) Pool() *Pool { return rt.pool }

// writeJSON mirrors the serve layer's response shape (pretty-printed).
func writeJSON(w http.ResponseWriter, code int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
	return code
}

// bagCall tracks one bag through forwarding: its original position, its
// canonical key's candidate replicas, and which have been tried.
type bagCall struct {
	index   int
	members []serve.Member
	cands   []string
	tried   []bool
}

func newBagCall(index int, members []serve.Member, cands []string) *bagCall {
	return &bagCall{index: index, members: members, cands: cands, tried: make([]bool, len(cands))}
}

// pick returns the next replica to try for this bag: the first untried
// candidate the breaker admits. When every untried candidate is
// breaker-rejected it falls back to the first untried one regardless — a
// tier whose breakers are all open degrades to the old try-everything
// behavior instead of turning a cooldown window into a total outage.
// Returns false when every candidate has been tried.
func (c *bagCall) pick(pool *Pool) (string, bool) {
	for i, cand := range c.cands {
		if !c.tried[i] && pool.Allow(cand) {
			c.tried[i] = true
			return cand, true
		}
	}
	for i, cand := range c.cands {
		if !c.tried[i] {
			c.tried[i] = true
			return cand, true
		}
	}
	return "", false
}

// forwardError is a sub-batch outcome that should be propagated to the
// client as-is (a replica answered non-200).
type forwardError struct {
	status     int
	body       serve.ErrorResponse
	retryAfter string
}

func (rt *Router) handlePredict(w http.ResponseWriter, r *http.Request) {
	startTime := time.Now()
	code := rt.servePredict(w, r)
	rt.metrics.observe(code, time.Since(startTime))
}

func (rt *Router) servePredict(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		return writeJSON(w, http.StatusMethodNotAllowed, serve.ErrorResponse{Error: "use POST"})
	}
	body := http.MaxBytesReader(w, r.Body, routerMaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req serve.PredictRequest
	if err := dec.Decode(&req); err != nil {
		return writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: fmt.Sprintf("decoding request: %v", err)})
	}
	// Same trailing-data contract as the replicas: exactly one JSON value.
	if tok, err := dec.Token(); err != io.EOF {
		return writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{
			Error: fmt.Sprintf("request body carries trailing data after the JSON value (next token %v); send exactly one JSON object", tok)})
	}
	bags, err := req.BagList()
	if err != nil {
		return writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: err.Error()})
	}

	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.Timeout)
	defer cancel()

	degradedOK := r.Header.Get(serve.HeaderDegradedOK)
	calls := make([]*bagCall, len(bags))
	for i, ms := range bags {
		calls[i] = newBagCall(i, ms, rt.pool.Route(serve.CanonicalKey(ms)))
	}

	if len(calls) == 1 && rt.cfg.HedgeDelay > 0 {
		return rt.servePredictHedged(ctx, w, calls[0], degradedOK)
	}

	results := make([]serve.BagResult, len(bags))
	scheme := ""
	degraded := false
	budget := rt.cfg.RetryBudget
	round := 0
	pending := calls
	for len(pending) > 0 {
		// Group this round's bags by the replica each should try next.
		groups := make(map[string][]*bagCall)
		for _, c := range pending {
			replica, ok := c.pick(rt.pool)
			if !ok {
				return writeJSON(w, http.StatusBadGateway, serve.ErrorResponse{
					Error: fmt.Sprintf("bag %d: every replica failed; last candidate list %v", c.index, c.cands)})
			}
			groups[replica] = append(groups[replica], c)
		}

		// Forward the groups concurrently; collect per-group outcomes.
		replicas := make([]string, 0, len(groups))
		for rep := range groups {
			replicas = append(replicas, rep)
		}
		sort.Strings(replicas)
		type outcome struct {
			replica string
			resp    *serve.PredictResponse
			ferr    *forwardError // replica answered non-200
			netErr  error         // transport-level failure → retry next candidate
		}
		outcomes := make([]outcome, len(replicas))
		var wg sync.WaitGroup
		for i, rep := range replicas {
			wg.Add(1)
			go func(i int, rep string) {
				defer wg.Done()
				resp, ferr, netErr := rt.forward(ctx, rep, groups[rep], degradedOK)
				outcomes[i] = outcome{replica: rep, resp: resp, ferr: ferr, netErr: netErr}
			}(i, rep)
		}
		wg.Wait()

		pending = pending[:0]
		for _, o := range outcomes {
			group := groups[o.replica]
			retryErr := o.netErr
			if retryErr == nil && o.ferr != nil && o.ferr.status >= 500 && o.ferr.status != http.StatusServiceUnavailable {
				// A non-503 5xx (replica panic, injected fault) is
				// replica-specific, not bag-specific: another candidate may
				// well answer. Treat it like a transport failure.
				retryErr = fmt.Errorf("replica answered %d: %s", o.ferr.status, o.ferr.body.Error)
			}
			switch {
			case retryErr != nil:
				// Transport-class failure: report to the pool (passive
				// ejection + breaker) and retry every bag in the group at
				// its next candidate, spending retry budget.
				rt.pool.ReportFailure(o.replica, retryErr)
				rt.metrics.retries.Add(int64(len(group)))
				rt.cfg.Logf("cluster: forward to %s failed (%v); retrying %d bag(s)", o.replica, retryErr, len(group))
				// One failed forward spends one budget unit regardless of
				// how many bags rode in it: the cost to the tier is per
				// HTTP attempt, and a single sick replica must not burn a
				// large batch's whole budget in one round.
				if budget < 1 {
					rt.metrics.budgetExhausted.Add(1)
					return writeJSON(w, http.StatusBadGateway, serve.ErrorResponse{
						Error: fmt.Sprintf("retry budget (%d) exhausted; last error from %s: %v", rt.cfg.RetryBudget, o.replica, retryErr)})
				}
				budget--
				pending = append(pending, group...)
			case o.ferr != nil:
				// The replica answered a client-class HTTP error or a 503:
				// propagate it as-is — a 400 means the bag itself is
				// invalid everywhere, a 503 means the owner is shedding
				// (the client's backpressure signal; rerouting would defeat
				// admission control).
				rt.pool.ReportSuccess(o.replica)
				if o.ferr.retryAfter != "" {
					w.Header().Set("Retry-After", o.ferr.retryAfter)
				}
				return writeJSON(w, o.ferr.status, o.ferr.body)
			default:
				rt.pool.ReportSuccess(o.replica)
				if scheme == "" {
					scheme = o.resp.ModelScheme
				} else if scheme != o.resp.ModelScheme {
					return writeJSON(w, http.StatusBadGateway, serve.ErrorResponse{
						Error: fmt.Sprintf("replicas disagree on the model scheme (%q vs %q); the tier is misconfigured", scheme, o.resp.ModelScheme)})
				}
				degraded = degraded || o.resp.Degraded
				for j, br := range o.resp.Results {
					results[group[j].index] = br
				}
				rt.metrics.forwarded(o.replica, len(group))
			}
		}

		if len(pending) > 0 {
			if err := rt.backoff(ctx, round); err != nil {
				return writeJSON(w, http.StatusGatewayTimeout, serve.ErrorResponse{
					Error: fmt.Sprintf("request deadline (%s) exceeded during retry backoff", rt.cfg.Timeout)})
			}
			round++
		}
	}

	rt.metrics.bags.Add(int64(len(results)))
	if degraded {
		w.Header().Set(serve.HeaderDegraded, "1")
	}
	return writeJSON(w, http.StatusOK, serve.PredictResponse{ModelScheme: scheme, Results: results, Degraded: degraded})
}

// backoff sleeps the jittered exponential retry delay for round:
// base*2^round capped at max, jittered uniformly over [d/2, d]. Returns
// ctx's error if the deadline lands first.
func (rt *Router) backoff(ctx context.Context, round int) error {
	d := rt.cfg.RetryBaseDelay << uint(round)
	if d <= 0 || d > rt.cfg.RetryMaxDelay {
		d = rt.cfg.RetryMaxDelay
	}
	half := int64(d / 2)
	jittered := time.Duration(half + rand.Int63n(half+1))
	t := time.NewTimer(jittered)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// servePredictHedged handles a single-bag request with tail-latency
// hedging: the first attempt races a delayed second attempt on the next
// candidate, first answer wins, losers are cancelled. Hedges and retries
// share the request's retry budget.
func (rt *Router) servePredictHedged(ctx context.Context, w http.ResponseWriter, c *bagCall, degradedOK string) int {
	type attempt struct {
		replica string
		resp    *serve.PredictResponse
		ferr    *forwardError
		netErr  error
	}
	resCh := make(chan attempt, len(c.cands))
	var cancels []context.CancelFunc
	defer func() {
		for _, cancel := range cancels {
			cancel()
		}
	}()

	budget := rt.cfg.RetryBudget
	inflight := 0
	launch := func(rep string) {
		actx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		inflight++
		go func() {
			resp, ferr, netErr := rt.forward(actx, rep, []*bagCall{c}, degradedOK)
			resCh <- attempt{replica: rep, resp: resp, ferr: ferr, netErr: netErr}
		}()
	}

	first, ok := c.pick(rt.pool)
	if !ok {
		return writeJSON(w, http.StatusBadGateway, serve.ErrorResponse{
			Error: fmt.Sprintf("bag 0: every replica failed; last candidate list %v", c.cands)})
	}
	launch(first)
	hedgeTimer := time.NewTimer(rt.cfg.HedgeDelay)
	defer hedgeTimer.Stop()
	hedgeArmed := true
	round := 0

	for {
		select {
		case <-ctx.Done():
			return writeJSON(w, http.StatusGatewayTimeout, serve.ErrorResponse{
				Error: fmt.Sprintf("request deadline (%s) exceeded", rt.cfg.Timeout)})
		case <-hedgeTimer.C:
			hedgeArmed = false
			if budget >= 1 {
				if rep, ok := c.pick(rt.pool); ok {
					budget--
					rt.metrics.hedges.Add(1)
					rt.cfg.Logf("cluster: hedging bag to %s after %s", rep, rt.cfg.HedgeDelay)
					launch(rep)
					continue
				}
			}
			if inflight == 0 {
				// The first attempt already failed and the hedge can't
				// launch: nothing can answer anymore.
				rt.metrics.budgetExhausted.Add(1)
				return writeJSON(w, http.StatusBadGateway, serve.ErrorResponse{
					Error: fmt.Sprintf("retry budget (%d) or candidate list exhausted for bag 0 (%v)", rt.cfg.RetryBudget, c.cands)})
			}
		case a := <-resCh:
			inflight--
			retryErr := a.netErr
			if retryErr == nil && a.ferr != nil && a.ferr.status >= 500 && a.ferr.status != http.StatusServiceUnavailable {
				retryErr = fmt.Errorf("replica answered %d: %s", a.ferr.status, a.ferr.body.Error)
			}
			switch {
			case retryErr != nil:
				rt.pool.ReportFailure(a.replica, retryErr)
				rt.metrics.retries.Add(1)
				rt.cfg.Logf("cluster: forward to %s failed (%v)", a.replica, retryErr)
				if inflight > 0 || hedgeArmed {
					// The race partner (or the armed hedge timer) can still
					// answer; don't spend budget yet.
					continue
				}
				if budget < 1 {
					rt.metrics.budgetExhausted.Add(1)
					return writeJSON(w, http.StatusBadGateway, serve.ErrorResponse{
						Error: fmt.Sprintf("retry budget (%d) exhausted; last error from %s: %v", rt.cfg.RetryBudget, a.replica, retryErr)})
				}
				rep, ok := c.pick(rt.pool)
				if !ok {
					return writeJSON(w, http.StatusBadGateway, serve.ErrorResponse{
						Error: fmt.Sprintf("bag 0: every replica failed; last candidate list %v", c.cands)})
				}
				budget--
				if err := rt.backoff(ctx, round); err != nil {
					return writeJSON(w, http.StatusGatewayTimeout, serve.ErrorResponse{
						Error: fmt.Sprintf("request deadline (%s) exceeded during retry backoff", rt.cfg.Timeout)})
				}
				round++
				launch(rep)
			case a.ferr != nil:
				rt.pool.ReportSuccess(a.replica)
				if a.ferr.retryAfter != "" {
					w.Header().Set("Retry-After", a.ferr.retryAfter)
				}
				return writeJSON(w, a.ferr.status, a.ferr.body)
			default:
				rt.pool.ReportSuccess(a.replica)
				if a.replica != first {
					rt.metrics.hedgeWins.Add(1)
				}
				rt.metrics.forwarded(a.replica, 1)
				rt.metrics.bags.Add(1)
				if a.resp.Degraded {
					w.Header().Set(serve.HeaderDegraded, "1")
				}
				return writeJSON(w, http.StatusOK, serve.PredictResponse{
					ModelScheme: a.resp.ModelScheme, Results: a.resp.Results, Degraded: a.resp.Degraded})
			}
		}
	}
}

// forward posts one sub-batch to one replica, bounded by the per-attempt
// timeout, propagating the remaining budget in X-Mapc-Deadline. Returns
// exactly one of: the decoded response (len(Results) == len(group)
// guaranteed), a forwardError to propagate, or a transport error to retry.
func (rt *Router) forward(ctx context.Context, baseURL string, group []*bagCall, degradedOK string) (*serve.PredictResponse, *forwardError, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.AttemptTimeout)
	defer cancel()
	sub := serve.PredictRequest{Bags: make([]serve.Bag, len(group))}
	for i, c := range group {
		sub.Bags[i] = serve.Bag{Members: c.members}
	}
	payload, err := json.Marshal(sub)
	if err != nil {
		return nil, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/predict", bytes.NewReader(payload))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.Header.Set(serve.HeaderDeadline, strconv.FormatInt(ms, 10))
	}
	if degradedOK != "" {
		req.Header.Set(serve.HeaderDegradedOK, degradedOK)
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()

	if resp.StatusCode != http.StatusOK {
		var eresp serve.ErrorResponse
		if err := json.NewDecoder(io.LimitReader(resp.Body, routerMaxBodyBytes)).Decode(&eresp); err != nil {
			eresp.Error = fmt.Sprintf("replica %s answered %d with an unreadable body", baseURL, resp.StatusCode)
		}
		return nil, &forwardError{
			status:     resp.StatusCode,
			body:       eresp,
			retryAfter: resp.Header.Get("Retry-After"),
		}, nil
	}
	var pr serve.PredictResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, routerMaxBodyBytes)).Decode(&pr); err != nil {
		// A 200 with a garbled body is a transport-class failure: the
		// replica is sick, try the next candidate.
		return nil, nil, fmt.Errorf("decoding reply from %s: %w", baseURL, err)
	}
	if len(pr.Results) != len(group) {
		return nil, nil, fmt.Errorf("replica %s answered %d results for %d bags", baseURL, len(pr.Results), len(group))
	}
	return &pr, nil, nil
}

// RouterHealth is the router's /healthz body.
type RouterHealth struct {
	Status    string          `json:"status"`
	Healthy   int             `json:"healthy"`
	Replicas  []ReplicaStatus `json:"replicas"`
	UptimeSec float64         `json:"uptime_sec"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, serve.ErrorResponse{Error: "GET only"})
		return
	}
	status := rt.pool.Status()
	healthy := 0
	for _, s := range status {
		if s.Healthy {
			healthy++
		}
	}
	// The router is "ok" while at least one replica is admitted; a tier
	// with zero healthy members reports degraded (503) so an outer load
	// balancer can fail away from it.
	code, state := http.StatusOK, "ok"
	if healthy == 0 {
		code, state = http.StatusServiceUnavailable, "degraded"
	}
	writeJSON(w, code, RouterHealth{
		Status:    state,
		Healthy:   healthy,
		Replicas:  status,
		UptimeSec: time.Since(rt.start).Seconds(),
	})
}

// routerMetrics is the router's stdlib-only instrumentation.
type routerMetrics struct {
	mu       sync.Mutex
	byCode   map[int]int64
	byTarget map[string]int64 // bags forwarded per replica
	latSum   float64
	latN     int64

	bags            atomic.Int64
	retries         atomic.Int64
	hedges          atomic.Int64
	hedgeWins       atomic.Int64
	budgetExhausted atomic.Int64
}

func newRouterMetrics() *routerMetrics {
	return &routerMetrics{byCode: map[int]int64{}, byTarget: map[string]int64{}}
}

func (m *routerMetrics) observe(code int, d time.Duration) {
	m.mu.Lock()
	m.byCode[code]++
	m.latSum += d.Seconds()
	m.latN++
	m.mu.Unlock()
}

func (m *routerMetrics) forwarded(replica string, bags int) {
	m.mu.Lock()
	m.byTarget[replica] += int64(bags)
	m.mu.Unlock()
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, serve.ErrorResponse{Error: "GET only"})
		return
	}
	m := rt.metrics
	m.mu.Lock()
	codes := make([]int, 0, len(m.byCode))
	for c := range m.byCode {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	targets := make([]string, 0, len(m.byTarget))
	for t := range m.byTarget {
		targets = append(targets, t)
	}
	sort.Strings(targets)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, c := range codes {
		fmt.Fprintf(w, "mapc_router_requests_total{code=%q} %d\n", fmt.Sprint(c), m.byCode[c])
	}
	for _, t := range targets {
		fmt.Fprintf(w, "mapc_router_forwarded_bags_total{replica=%q} %d\n", t, m.byTarget[t])
	}
	fmt.Fprintf(w, "mapc_router_request_duration_seconds_sum %g\n", m.latSum)
	fmt.Fprintf(w, "mapc_router_request_duration_seconds_count %d\n", m.latN)
	m.mu.Unlock()
	fmt.Fprintf(w, "mapc_router_bags_total %d\n", m.bags.Load())
	fmt.Fprintf(w, "mapc_router_retries_total %d\n", m.retries.Load())
	fmt.Fprintf(w, "mapc_router_hedges_total %d\n", m.hedges.Load())
	fmt.Fprintf(w, "mapc_router_hedge_wins_total %d\n", m.hedgeWins.Load())
	fmt.Fprintf(w, "mapc_router_budget_exhausted_total %d\n", m.budgetExhausted.Load())
	fmt.Fprintf(w, "mapc_router_breaker_skips_total %d\n", rt.pool.BreakerSkips())
	fmt.Fprintf(w, "mapc_router_replicas_healthy %d\n", rt.pool.HealthyCount())
	fmt.Fprintf(w, "mapc_router_ejections_total %d\n", rt.pool.Ejections())
	fmt.Fprintf(w, "mapc_router_readmissions_total %d\n", rt.pool.Readmissions())
	fmt.Fprintf(w, "mapc_router_uptime_seconds %g\n", time.Since(rt.start).Seconds())
}
