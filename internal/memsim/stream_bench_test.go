package memsim

import (
	"fmt"
	"testing"

	"mapc/internal/trace"
)

// Stream microbenchmarks time synthetic reference generation for each
// access pattern — the producer side of every simulateMemory call. The
// suite is part of the committed perf baseline (BENCH_baseline.json).

func benchPhase(pattern trace.Pattern) *trace.Phase {
	return &trace.Phase{
		Name:        "bench",
		Footprint:   8 << 20,
		Pattern:     pattern,
		StrideBytes: 128,
		Reuse:       0.3,
		Parallelism: 1024,
		VectorWidth: 1,
	}
}

func BenchmarkStreamNext(b *testing.B) {
	for _, pc := range []struct {
		name    string
		pattern trace.Pattern
	}{
		{"sequential", trace.Sequential},
		{"strided", trace.Strided},
		{"windowed", trace.Windowed},
		{"random", trace.Random},
	} {
		b.Run(pc.name, func(b *testing.B) {
			st, err := NewStream(benchPhase(pc.pattern), 1<<40, 42)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink += st.Next()
			}
			benchSink = sink
		})
	}
}

var benchSink uint64

func BenchmarkSampleRefs(b *testing.B) {
	var sink int
	for i := 0; i < b.N; i++ {
		sink += SampleRefs(uint64(i))
	}
	benchSink += uint64(sink)
}

func ExampleSampleRefs() {
	fmt.Println(SampleRefs(100), SampleRefs(1_000_000))
	// Output: 100 24576
}
