// Command mapc-experiments regenerates the paper's evaluation artifacts
// (Figures 1-12) on the simulated substrate and prints them as tables.
//
// Usage:
//
//	mapc-experiments                 # all figures
//	mapc-experiments -only figure5   # one figure
//	mapc-experiments -list           # list artifact IDs
package main

import (
	"flag"
	"fmt"
	"os"

	"mapc/internal/dataset"
	"mapc/internal/experiments"
	"mapc/internal/phasesum"
	"mapc/internal/profiling"
)

func main() {
	only := flag.String("only", "", "regenerate a single artifact (e.g. figure5)")
	list := flag.Bool("list", false, "list artifact IDs and exit")
	workers := flag.Int("workers", 0, "measurement worker goroutines (0 = NumCPU, 1 = serial); figures are identical for every value")
	simCacheMB := flag.Int("simcache-mb", dataset.DefaultSimCacheMB, "simulation memo budget in MiB (0 = off); output is identical at every budget")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of artifact regeneration to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a post-GC heap profile to this file on exit")
	fidelity := flag.String("fidelity", "exact", "co-run fidelity tier: exact | mixed | fast (figures regenerate faster at analytic tiers, with model-bounded deviations)")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "mapc-experiments: profiling:", err)
		}
	}()

	if *list {
		for _, g := range experiments.Generators() {
			fmt.Printf("%-10s %s\n", g.ID, g.Doc)
		}
		for _, g := range experiments.ExtraGenerators() {
			fmt.Printf("%-10s %s (extension)\n", g.ID, g.Doc)
		}
		return
	}

	cfg := dataset.DefaultConfig()
	cfg.Workers = *workers
	cfg.SimCacheMB = *simCacheMB
	fid, err := phasesum.ParseFidelity(*fidelity)
	if err != nil {
		fatal(err)
	}
	cfg.Fidelity = fid
	env := experiments.NewEnv(cfg)
	if *only != "" {
		t, err := experiments.Run(env, *only)
		if err != nil {
			fatal(err)
		}
		if err := t.Render(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	tables, err := experiments.All(env)
	if err != nil {
		fatal(err)
	}
	for _, t := range tables {
		if err := t.Render(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mapc-experiments:", err)
	os.Exit(1)
}
