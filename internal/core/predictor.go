package core

import (
	"errors"
	"fmt"

	"mapc/internal/dataset"
	"mapc/internal/features"
	"mapc/internal/ml"
)

// Predictor is the trained model: a CART regression tree over a feature
// scheme, carrying the normalization constant of its training corpus so it
// can featurize fresh bags consistently.
type Predictor struct {
	scheme       Scheme
	cols         []int
	colNames     []string
	allNames     []string
	tree         *ml.TreeRegressor
	timeDivisor  float64
	trainedOnPts int
}

// TreeParams exposes the decision-tree hyper-parameters (Section II-B3's
// pre-specified depth etc.).
type TreeParams struct {
	MaxDepth        int
	MinSamplesLeaf  int
	MinSamplesSplit int
}

// DefaultTreeParams mirror the configuration used for every figure.
func DefaultTreeParams() TreeParams {
	return TreeParams{MaxDepth: 0, MinSamplesLeaf: 1, MinSamplesSplit: 2}
}

// Train fits a predictor on the corpus with the given scheme.
func Train(c *dataset.Corpus, scheme Scheme, params TreeParams) (*Predictor, error) {
	if c == nil || len(c.Points) == 0 {
		return nil, errors.New("core: empty corpus")
	}
	d := c.Dataset()
	return trainOn(d, c, scheme, params)
}

// trainOn fits on an explicit dataset view (used by LOOCV to train on
// subsets).
func trainOn(d *ml.Dataset, c *dataset.Corpus, scheme Scheme, params TreeParams) (*Predictor, error) {
	cols, err := scheme.Columns(c.FeatureNames)
	if err != nil {
		return nil, err
	}
	colNames, err := scheme.ColumnNames(c.FeatureNames)
	if err != nil {
		return nil, err
	}
	sel, err := (&ml.Dataset{
		FeatureNames: c.FeatureNames,
		X:            d.X, Y: d.Y, Groups: d.Groups,
	}).SelectFeatures(colNames)
	if err != nil {
		return nil, err
	}
	tree := ml.NewTreeRegressor()
	tree.MaxDepth = params.MaxDepth
	tree.MinSamplesLeaf = params.MinSamplesLeaf
	tree.MinSamplesSplit = params.MinSamplesSplit
	if err := tree.Fit(sel); err != nil {
		return nil, err
	}
	return &Predictor{
		scheme:       scheme,
		cols:         cols,
		colNames:     colNames,
		allNames:     c.FeatureNames,
		tree:         tree,
		timeDivisor:  c.CPUTimeDivisor,
		trainedOnPts: sel.Len(),
	}, nil
}

// Scheme returns the feature scheme the predictor was trained with.
func (p *Predictor) Scheme() Scheme { return p.scheme }

// FeatureNames returns the names of the model's input columns.
func (p *Predictor) FeatureNames() []string {
	return append([]string(nil), p.colNames...)
}

// Tree exposes the underlying fitted tree for introspection.
func (p *Predictor) Tree() *ml.TreeRegressor { return p.tree }

// TimeDivisor returns the Section V-C normalization constant.
func (p *Predictor) TimeDivisor() float64 { return p.timeDivisor }

// PredictVector predicts from a full (normalized) corpus-width vector.
func (p *Predictor) PredictVector(x []float64) (float64, error) {
	sel, err := p.selectCols(x)
	if err != nil {
		return 0, err
	}
	return p.tree.Predict(sel)
}

// PredictRaw predicts from a raw (un-normalized) full-width vector, e.g.
// one produced by dataset.Generator.FeaturesFor. The vector is copied.
func (p *Predictor) PredictRaw(x []float64) (float64, error) {
	cp := append([]float64(nil), x...)
	if err := features.ScaleTimes(p.allNames, cp, p.timeDivisor); err != nil {
		return 0, err
	}
	return p.PredictVector(cp)
}

// PathVector returns the decision path for a full-width normalized vector.
func (p *Predictor) PathVector(x []float64) ([]ml.DecisionStep, error) {
	sel, err := p.selectCols(x)
	if err != nil {
		return nil, err
	}
	return p.tree.DecisionPath(sel)
}

func (p *Predictor) selectCols(x []float64) ([]float64, error) {
	if len(x) != len(p.allNames) {
		return nil, fmt.Errorf("core: vector width %d, corpus width %d", len(x), len(p.allNames))
	}
	sel := make([]float64, len(p.cols))
	for i, c := range p.cols {
		sel[i] = x[c]
	}
	return sel, nil
}

// PredictPoint predicts the GPU bag time for an existing corpus point.
func (p *Predictor) PredictPoint(pt *dataset.Point) (float64, error) {
	return p.PredictVector(pt.X)
}
