package dataset

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// The golden corpus-hash tests pin the *byte-exact* output of corpus
// generation. The hashes below were recorded from the pre-optimization
// memory-hierarchy simulator (linear-scan TLB, per-access tag-shift cache,
// append-grown interleaving); the rebuilt O(1) hot path must reproduce them
// bit for bit. If a deliberate modeling change ever alters simulation
// semantics, re-record the constants with `go test ./internal/dataset -run
// TestCorpusGoldenHash -v` (the failure message prints the new hash) and
// say so in the commit message — these constants changing is the loudest
// signal the simulator's outputs moved.
const (
	// goldenSmallCorpusHash covers 3 benchmarks x 3 batches with
	// heterogeneous and mixed-batch pairs (the smallConfig used by the
	// worker-invariance goldens).
	goldenSmallCorpusHash = "167da8cf8563b96c2339e180b72fa94bf65201cb0e0e66f8d80bcfa4be0df7a9"
	// goldenPrefetchCorpusHash additionally enables the CPU-side stride
	// prefetcher (PrefetchDegree=2), pinning the Cache.Install path.
	goldenPrefetchCorpusHash = "b36df8bb7c2f0aee3d53731f90903948d5fadcfb7dd81cd8ce4e4edc70678636"
	// goldenFullCorpusHash is the complete 91-point Section V-B corpus
	// (all nine benchmarks, five batch sizes, 10 mixed pairs).
	goldenFullCorpusHash = "7d3d4de57a0939f2b372085f135ea36aa5b2caff391404b059bc3ffcc8b06d4c"
)

// hashCorpus serializes every numeric field of the corpus with full float64
// round-trip precision and returns the SHA-256 of the result. Any change to
// a hit/miss outcome, a victim choice, an RNG draw, or an accumulation
// order anywhere in the simulators changes this hash.
func hashCorpus(c *Corpus) string {
	var sb strings.Builder
	f := func(v float64) {
		sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		sb.WriteByte(',')
	}
	fmt.Fprintf(&sb, "names=%s;", strings.Join(c.FeatureNames, ","))
	f(c.CPUTimeDivisor)
	for i := range c.Points {
		p := &c.Points[i]
		fmt.Fprintf(&sb, ";%s/%d+%s/%d:%t:",
			p.Members[0].Benchmark, p.Members[0].Batch,
			p.Members[1].Benchmark, p.Members[1].Batch, p.Homogeneous)
		for _, v := range p.X {
			f(v)
		}
		f(p.Y)
		f(p.Fairness)
		f(p.CPUTimes[0])
		f(p.CPUTimes[1])
		f(p.GPUTimes[0])
		f(p.GPUTimes[1])
	}
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:])
}

func checkCorpusHash(t *testing.T, cfg Config, want, label string) {
	t.Helper()
	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if got := hashCorpus(c); got != want {
		t.Errorf("%s corpus hash = %s, want %s\n"+
			"simulation outputs changed — if this is a deliberate modeling change, "+
			"re-record the golden constant; if not, the memory-hierarchy fast path "+
			"broke bit-identity", label, got, want)
	}
}

// TestCorpusGoldenHashSmall pins the reduced corpus (fast to regenerate;
// run on every `go test`).
func TestCorpusGoldenHashSmall(t *testing.T) {
	checkCorpusHash(t, smallConfig(), goldenSmallCorpusHash, "small")
}

// TestCorpusGoldenHashPrefetch pins the corpus with the stride prefetcher
// enabled, covering Cache.Install's victim selection.
func TestCorpusGoldenHashPrefetch(t *testing.T) {
	cfg := smallConfig()
	cfg.CPU.PrefetchDegree = 2
	checkCorpusHash(t, cfg, goldenPrefetchCorpusHash, "prefetch")
}

// TestCorpusGoldenHashFull pins the complete 91-point paper corpus. Skipped
// under -short; CI runs it.
func TestCorpusGoldenHashFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full 91-point corpus generation; run without -short")
	}
	checkCorpusHash(t, DefaultConfig(), goldenFullCorpusHash, "full")
}
