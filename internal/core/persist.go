package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"mapc/internal/features"
	"mapc/internal/fsatomic"
	"mapc/internal/ml"
)

// equalInts reports whether two int slices are element-wise equal.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// predictorJSON is the on-disk form of a trained Predictor: the fitted tree
// plus everything needed to featurize fresh bags consistently (scheme,
// column mapping, and the training corpus's time normalization constant).
// NumFeatures records the expected raw input width so loaders can refuse
// models whose feature contract disagrees with their column tables.
type predictorJSON struct {
	Format      string            `json:"format"`
	SchemeName  string            `json:"scheme_name"`
	SchemeKinds []string          `json:"scheme_kinds"`
	NumFeatures int               `json:"num_features"`
	Columns     []int             `json:"columns"`
	ColumnNames []string          `json:"column_names"`
	AllNames    []string          `json:"all_feature_names"`
	TimeDivisor float64           `json:"time_divisor"`
	TrainedOn   int               `json:"trained_on_points"`
	Tree        *ml.TreeRegressor `json:"tree"`
}

const predictorFormat = "mapc-predictor-v1"

// Save writes the predictor to w as JSON.
func (p *Predictor) Save(w io.Writer) error {
	out := predictorJSON{
		Format:      predictorFormat,
		SchemeName:  p.scheme.Name,
		SchemeKinds: p.scheme.Kinds,
		NumFeatures: len(p.allNames),
		Columns:     p.cols,
		ColumnNames: p.colNames,
		AllNames:    p.allNames,
		TimeDivisor: p.timeDivisor,
		TrainedOn:   p.trainedOnPts,
		Tree:        p.tree,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SaveFile writes the predictor to the named file atomically: the JSON is
// written to a temp file in the same directory, fsynced, and renamed over
// path. A crash mid-save therefore never leaves a truncated model for
// core.Load's scheme/width checks to reject confusingly — the file is
// either the previous complete model or the new one.
func (p *Predictor) SaveFile(path string) error {
	return fsatomic.WriteFile(path, p.Save)
}

// Load reads a predictor previously written with Save.
func Load(r io.Reader) (*Predictor, error) {
	var in predictorJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("core: decoding predictor: %w", err)
	}
	if in.Format != predictorFormat {
		return nil, fmt.Errorf("core: unsupported predictor format %q", in.Format)
	}
	switch {
	case in.Tree == nil:
		return nil, errors.New("core: serialized predictor has no tree")
	case in.TimeDivisor <= 0:
		return nil, errors.New("core: serialized predictor has invalid time divisor")
	case len(in.Columns) == 0 || len(in.Columns) != len(in.ColumnNames):
		return nil, errors.New("core: serialized predictor has inconsistent columns")
	case len(in.AllNames) == 0:
		return nil, errors.New("core: serialized predictor has no feature names")
	}
	for _, c := range in.Columns {
		if c < 0 || c >= len(in.AllNames) {
			return nil, fmt.Errorf("core: serialized column index %d out of range", c)
		}
	}
	// Feature-contract checks: the scheme, column table, declared width and
	// fitted tree must all agree, otherwise predictions would silently read
	// the wrong columns. Files written before num_features existed carry 0
	// and skip only the width-declaration check.
	if in.NumFeatures != 0 && in.NumFeatures != len(in.AllNames) {
		return nil, fmt.Errorf("core: serialized predictor declares %d features but names %d",
			in.NumFeatures, len(in.AllNames))
	}
	scheme := Scheme{Name: in.SchemeName, Kinds: in.SchemeKinds}
	if scheme.Name == "" || len(scheme.Kinds) == 0 {
		return nil, errors.New("core: serialized predictor has no feature scheme")
	}
	valid := map[string]bool{}
	for _, k := range features.KindNames() {
		valid[k] = true
	}
	for _, k := range scheme.Kinds {
		if !valid[k] {
			return nil, fmt.Errorf("core: serialized scheme %q has unknown feature kind %q", scheme.Name, k)
		}
	}
	wantCols, err := scheme.Columns(in.AllNames)
	if err != nil {
		return nil, fmt.Errorf("core: serialized scheme %q does not resolve against its feature names: %w", scheme.Name, err)
	}
	if !equalInts(wantCols, in.Columns) {
		return nil, fmt.Errorf("core: serialized scheme %q selects columns %v but file stores %v",
			scheme.Name, wantCols, in.Columns)
	}
	if tw := in.Tree.NumFeatures(); tw != len(in.Columns) {
		return nil, fmt.Errorf("core: serialized tree expects %d features but scheme %q selects %d columns",
			tw, scheme.Name, len(in.Columns))
	}
	return &Predictor{
		scheme:       scheme,
		cols:         in.Columns,
		colNames:     in.ColumnNames,
		allNames:     in.AllNames,
		tree:         in.Tree,
		timeDivisor:  in.TimeDivisor,
		trainedOnPts: in.TrainedOn,
	}, nil
}

// LoadFile reads a predictor from the named file.
func LoadFile(path string) (*Predictor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
