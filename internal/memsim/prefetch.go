package memsim

// StridePrefetcher is a classic confidence-based stride prefetcher: it
// observes a demand-miss address stream at line granularity, and once two
// consecutive misses exhibit the same stride it emits prefetch candidates
// for the next lines along that stride. The CPU simulator can attach one
// per application in front of its private L2 (Config.PrefetchDegree).
type StridePrefetcher struct {
	degree     int
	lastLine   uint64
	lastStride int64
	confident  bool
	seen       bool
	issued     uint64
}

// NewStridePrefetcher returns a prefetcher issuing up to degree lines per
// confident miss. A degree of 0 disables it (OnMiss returns nil).
func NewStridePrefetcher(degree int) *StridePrefetcher {
	if degree < 0 {
		degree = 0
	}
	return &StridePrefetcher{degree: degree}
}

// OnMiss trains on a demand miss at addr and returns the addresses to
// prefetch (line-aligned), if any.
func (p *StridePrefetcher) OnMiss(addr uint64) []uint64 {
	if p.degree == 0 {
		return nil
	}
	line := addr / LineSize
	defer func() { p.lastLine = line; p.seen = true }()
	if !p.seen {
		return nil
	}
	stride := int64(line) - int64(p.lastLine)
	if stride == 0 {
		return nil
	}
	if stride == p.lastStride {
		if !p.confident {
			p.confident = true
		}
	} else {
		p.lastStride = stride
		p.confident = false
		return nil
	}
	out := make([]uint64, 0, p.degree)
	next := int64(line)
	for i := 0; i < p.degree; i++ {
		next += stride
		if next <= 0 {
			break
		}
		out = append(out, uint64(next)*LineSize)
	}
	p.issued += uint64(len(out))
	return out
}

// Issued returns the total number of prefetches emitted.
func (p *StridePrefetcher) Issued() uint64 { return p.issued }

// Install inserts addr's line into the cache on behalf of source without
// touching the demand statistics — the path prefetch fills take.
func (c *Cache) Install(source int, addr uint64) {
	ln := addr >> c.setShift
	set := ln & c.setMask
	tag := ln >> c.tagShift
	base := int(set) * c.ways
	c.clock++
	ways := c.lines[base : base+c.ways : base+c.ways]
	lruWay, lruClock := 0, ^uint64(0)
	for w := range ways {
		l := &ways[w]
		if l.valid && l.tag == tag {
			// Already resident: refresh recency and return.
			l.lru = c.clock
			return
		}
		if l.lru < lruClock {
			lruClock = l.lru
			lruWay = w
		}
	}
	l := &ways[lruWay]
	if l.valid && l.src != int32(source) {
		c.crossEvictions[l.src]++
	}
	l.tag = tag
	l.valid = true
	l.src = int32(source)
	l.lru = c.clock
}
