package dataset

import (
	"testing"
)

// These tests pin the simulation memo's bit-identity guarantee at the
// corpus level: the golden SHA-256 hashes recorded on pre-memo code must
// be reproduced with the memo disabled (SimCacheMB=0, the exact cold
// path), at the default budget (the regular golden tests already run
// memo-on via DefaultConfig/smallConfig), and at a deliberately starved
// budget where entries are continuously evicted and recomputed. Eviction
// may change only *when* values are recomputed, never what they are.

// TestCorpusGoldenHashMemoOff proves SimCacheMB=0 is the exact legacy
// cold path.
func TestCorpusGoldenHashMemoOff(t *testing.T) {
	cfg := smallConfig()
	cfg.SimCacheMB = 0
	checkCorpusHash(t, cfg, goldenSmallCorpusHash, "memo-off")
}

// TestCorpusGoldenHashMemoEviction starves the memo to 1 MiB — far below
// the small corpus's working set, so the LRU evicts constantly — and
// requires the byte-identical golden hash plus evidence the pressure was
// real.
func TestCorpusGoldenHashMemoEviction(t *testing.T) {
	cfg := smallConfig()
	cfg.SimCacheMB = 1
	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if got := hashCorpus(c); got != goldenSmallCorpusHash {
		t.Errorf("eviction-pressure corpus hash = %s, want %s\n"+
			"eviction changed simulation outputs — the memo must be bit-identical at every budget",
			got, goldenSmallCorpusHash)
	}
	st := gen.SimCacheStats()
	if st.Evictions == 0 {
		t.Fatalf("1 MiB budget evicted nothing (%+v); the pressure case is inert — shrink the budget", st)
	}
	if st.Bytes > int64(cfg.SimCacheMB)<<20 {
		t.Fatalf("resident bytes %d exceed the %d MiB budget", st.Bytes, cfg.SimCacheMB)
	}
}

// TestCorpusGoldenHashMemoDefaultStats re-runs the small corpus at the
// default budget and asserts the memo actually carried the load: with 3
// benchmarks x 3 batches over dozens of bags, the overwhelming majority
// of prefix lookups must hit.
func TestCorpusGoldenHashMemoDefaultStats(t *testing.T) {
	gen, err := NewGenerator(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if got := hashCorpus(c); got != goldenSmallCorpusHash {
		t.Errorf("memo-on corpus hash = %s, want %s", got, goldenSmallCorpusHash)
	}
	st := gen.SimCacheStats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("memo not exercised during generation: %+v", st)
	}
	if st.Evictions != 0 {
		t.Fatalf("default budget evicted %d entries on the small corpus; budget accounting regressed (%+v)", st.Evictions, st)
	}
	if hr := st.HitRate(); hr < 0.5 {
		t.Fatalf("hit rate %.2f < 0.5 over the small corpus: the memo is not deduplicating per-member prefixes (%+v)", hr, st)
	}
}
