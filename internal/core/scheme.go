// Package core is the paper's primary contribution: a decision-tree-based
// predictor for the execution time of a multi-application bag of tasks on a
// GPU (Section V). It ties the substrates together — instrumented vision
// workloads, CPU/GPU simulators, MICA mixes, fairness — into a train/predict
// pipeline, implements the feature-scheme ablations of Figures 5-9, the
// grouped LOOCV protocol of Figure 4, and the decision-path analytics of
// Figures 10-12.
package core

import (
	"fmt"

	"mapc/internal/features"
	"mapc/internal/isa"
)

// Scheme is a named set of feature kinds — one bar of Figures 5-9. Columns
// of every application replica matching a kind are included.
type Scheme struct {
	// Name labels the scheme in reports (e.g. "insmix+cputime").
	Name string
	// Kinds lists the feature kinds included (see features.KindNames).
	Kinds []string
}

// insmixKinds are the eight instruction-mix feature kinds.
func insmixKinds() []string {
	out := make([]string, 0, isa.NumCategories)
	for c := isa.Category(0); c < isa.NumCategories; c++ {
		out = append(out, c.String())
	}
	return out
}

// The schemes of Figure 5 (scheme names follow the paper's bar labels).
var (
	// SchemeInsmix uses only the instruction mix — the Baldini et al.
	// feature set, the paper's primary point of comparison.
	SchemeInsmix = Scheme{Name: "insmix", Kinds: insmixKinds()}
	// SchemeInsmixCPU adds the CPU execution time.
	SchemeInsmixCPU = Scheme{Name: "insmix+cputime",
		Kinds: append(insmixKinds(), features.KindCPUTime)}
	// SchemeInsmixCPUFair adds the fairness metric.
	SchemeInsmixCPUFair = Scheme{Name: "insmix+cputime+fairness",
		Kinds: append(insmixKinds(), features.KindCPUTime, features.KindFairness)}
	// SchemeFull is the paper's full Table-IV feature set.
	SchemeFull = Scheme{Name: "full", Kinds: features.KindNames()}
)

// Figure5Schemes returns the four bars of Figure 5 in order.
func Figure5Schemes() []Scheme {
	return []Scheme{SchemeInsmix, SchemeInsmixCPU, SchemeInsmixCPUFair, SchemeFull}
}

// SchemeByName resolves one of the Figure-5 scheme names ("insmix",
// "insmix+cputime", "insmix+cputime+fairness", "full"). It is the shared
// lookup behind every CLI's -scheme flag.
func SchemeByName(name string) (Scheme, bool) {
	for _, s := range Figure5Schemes() {
		if s.Name == name {
			return s, true
		}
	}
	return Scheme{}, false
}

// Equal reports whether two schemes agree on both name and kind set
// (order-sensitive: kinds are canonical Table-IV order everywhere).
func (s Scheme) Equal(o Scheme) bool {
	if s.Name != o.Name || len(s.Kinds) != len(o.Kinds) {
		return false
	}
	for i := range s.Kinds {
		if s.Kinds[i] != o.Kinds[i] {
			return false
		}
	}
	return true
}

// NewScheme builds a scheme from kind names, validating each kind.
func NewScheme(name string, kinds ...string) (Scheme, error) {
	valid := map[string]bool{}
	for _, k := range features.KindNames() {
		valid[k] = true
	}
	for _, k := range kinds {
		if !valid[k] {
			return Scheme{}, fmt.Errorf("core: unknown feature kind %q", k)
		}
	}
	return Scheme{Name: name, Kinds: kinds}, nil
}

// Columns resolves the scheme to dataset column indices given the corpus's
// feature names.
func (s Scheme) Columns(featureNames []string) ([]int, error) {
	want := map[string]bool{}
	for _, k := range s.Kinds {
		want[k] = true
	}
	var cols []int
	for j, n := range featureNames {
		if want[features.Kind(n)] {
			cols = append(cols, j)
		}
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("core: scheme %q matches no columns", s.Name)
	}
	return cols, nil
}

// ColumnNames returns the feature names the scheme selects, in column order.
func (s Scheme) ColumnNames(featureNames []string) ([]string, error) {
	cols, err := s.Columns(featureNames)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = featureNames[c]
	}
	return out, nil
}
