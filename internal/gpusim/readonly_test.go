package gpusim

import (
	"reflect"
	"testing"

	"mapc/internal/simcache"
	"mapc/internal/trace"
)

// TestRunTreatsWorkloadsAsReadOnly enforces the read-only contract
// documented on Run: neither Run nor RunMemo mutates its input workloads,
// so dataset.Generator may pass its cached workloads directly (no
// per-point clones). Checked two ways — the full-field Fingerprint digest
// and a structural DeepEqual against a pre-run Clone — across isolated,
// shared, and memoized runs under eviction pressure.
func TestRunTreatsWorkloadsAsReadOnly(t *testing.T) {
	cfg := DefaultConfig()

	wa, wb := memKernel("a"), computeKernel("b")
	fpA, fpB := wa.Fingerprint(), wb.Fingerprint()
	cloneA, cloneB := wa.Clone(), wb.Clone()

	check := func(stage string) {
		t.Helper()
		if wa.Fingerprint() != fpA || wb.Fingerprint() != fpB {
			t.Fatalf("%s: workload fingerprint changed; the simulator mutated its input", stage)
		}
		if !reflect.DeepEqual(wa, cloneA) || !reflect.DeepEqual(wb, cloneB) {
			t.Fatalf("%s: workload structure changed; the simulator mutated its input", stage)
		}
	}

	if _, err := Run(cfg, []*trace.Workload{wa}); err != nil {
		t.Fatal(err)
	}
	check("isolated Run")

	if _, err := Run(cfg, []*trace.Workload{wa, wb}); err != nil {
		t.Fatal(err)
	}
	check("shared Run")

	for _, budget := range []int64{64 << 20, 1 << 12} {
		memo := simcache.MustNew(budget)
		for i := 0; i < 3; i++ {
			if _, err := RunMemo(cfg, memo, []*trace.Workload{wa}); err != nil {
				t.Fatal(err)
			}
			if _, err := RunMemo(cfg, memo, []*trace.Workload{wa, wb}); err != nil {
				t.Fatal(err)
			}
		}
		check("RunMemo")
	}
}
