package serve

import (
	"errors"
	"fmt"
	"sort"

	"mapc/internal/dataset"
)

// This file is the service's wire format, exported so the cluster router
// (internal/cluster) and the load generator (cmd/mapc-loadgen) speak
// exactly the structures the server decodes — one schema, three users.

// Resilience headers shared by router, serve, and loadgen.
const (
	// HeaderDeadline carries the caller's remaining time budget in integer
	// milliseconds. The router stamps it on every forward from the
	// per-attempt context; serve honors it (capped by its own
	// RequestTimeout) instead of the static default. A duration rather
	// than an absolute timestamp so clock skew between tiers is harmless.
	HeaderDeadline = "X-Mapc-Deadline"
	// HeaderDegradedOK on a request tells serve the client prefers a fast
	// possibly-degraded answer over waiting for the exact tier: admission
	// routes it straight to the analytic fast path.
	HeaderDegradedOK = "X-Mapc-Degraded-OK"
	// HeaderDegraded is set ("1") on responses answered from the degraded
	// fast tier, mirroring the body's "degraded" field so load generators
	// can count brownouts without parsing JSON.
	HeaderDegraded = "X-Mapc-Degraded"
)

// Member is one application instance in the wire format.
type Member struct {
	Benchmark string `json:"benchmark"`
	Batch     int    `json:"batch"`
}

func (m Member) member() dataset.Member {
	return dataset.Member{Benchmark: m.Benchmark, Batch: m.Batch}
}

// Bag is one bag: either the legacy 2-application {"a":…,"b":…} form
// or a k-member {"members":[…]} list. Exactly one form per bag.
type Bag struct {
	A       *Member  `json:"a,omitempty"`
	B       *Member  `json:"b,omitempty"`
	Members []Member `json:"members,omitempty"`
}

// MemberList flattens the bag to its member sequence, validating that
// exactly one of the two wire forms was used.
func (b Bag) MemberList() ([]Member, error) {
	if len(b.Members) > 0 {
		if b.A != nil || b.B != nil {
			return nil, errors.New(`mixes "members" with "a"/"b"; use one form per bag`)
		}
		return b.Members, nil
	}
	if b.A == nil || b.B == nil {
		return nil, errors.New(`requires both "a" and "b", or a "members" list`)
	}
	return []Member{*b.A, *b.B}, nil
}

// PredictRequest accepts a single bag inline — the legacy pair form
// ({"a":…,"b":…}) or a k-member list ({"bag":[…]}) — or a batch
// ({"bags":[…]}); combined forms are allowed and inline bags run first.
type PredictRequest struct {
	A    *Member  `json:"a,omitempty"`
	B    *Member  `json:"b,omitempty"`
	Bag  []Member `json:"bag,omitempty"`
	Bags []Bag    `json:"bags,omitempty"`
}

// BagList validates the request's structural form and flattens it into a
// list of member sequences, in response order. It performs no model- or
// registry-level validation (bag size, benchmark names, batch positivity)
// — the server layers those on top, and the router deliberately leaves
// them to the replica that owns each bag.
func (r *PredictRequest) BagList() ([][]Member, error) {
	var bags [][]Member
	switch {
	case r.A != nil && r.B != nil:
		bags = append(bags, []Member{*r.A, *r.B})
	case r.A != nil || r.B != nil:
		return nil, errors.New("single-bag form requires both \"a\" and \"b\"")
	}
	if len(r.Bag) > 0 {
		bags = append(bags, r.Bag)
	}
	for i, bag := range r.Bags {
		ms, err := bag.MemberList()
		if err != nil {
			return nil, fmt.Errorf("bags[%d] %v", i, err)
		}
		bags = append(bags, ms)
	}
	if len(bags) == 0 {
		return nil, errors.New("no bags: provide {\"a\":…,\"b\":…}, {\"bag\":[…]} or {\"bags\":[…]}")
	}
	return bags, nil
}

// CanonicalKey is the permutation-invariant identity of a bag on the wire:
// members sorted by (benchmark, batch) and joined into the canonical
// dataset bag key. The feature cache and the cluster router both key on
// it, which is what routes every permutation of the same multiset of
// members to the same replica and the same cache entry.
func CanonicalKey(ms []Member) string {
	s := make([]dataset.Member, len(ms))
	for i, m := range ms {
		s[i] = m.member()
	}
	sort.Slice(s, func(i, j int) bool {
		if s[i].Benchmark != s[j].Benchmark {
			return s[i].Benchmark < s[j].Benchmark
		}
		return s[i].Batch < s[j].Batch
	})
	return dataset.BagKeyOf(s)
}

// BagResult is one bag's answer. Members always lists the bag; the legacy
// a/b fields are populated for 2-application bags so pair-era clients keep
// parsing responses unchanged.
type BagResult struct {
	A            *Member  `json:"a,omitempty"`
	B            *Member  `json:"b,omitempty"`
	Members      []Member `json:"members"`
	PredictedSec float64  `json:"predicted_gpu_bag_time_sec"`
	Fairness     float64  `json:"fairness"`
	Cached       bool     `json:"cached"`
}

// PredictResponse is the /v1/predict success body. Degraded is true when
// the answer came from the brownout fast tier rather than the exact
// simulation path (omitted when false, so pre-brownout clients and
// byte-identity tests see an unchanged encoding).
type PredictResponse struct {
	ModelScheme string      `json:"model_scheme"`
	Results     []BagResult `json:"results"`
	Degraded    bool        `json:"degraded,omitempty"`
}

// ErrorResponse is every non-2xx JSON body.
type ErrorResponse struct {
	Error string `json:"error"`
}

// HealthResponse is the /healthz body.
type HealthResponse struct {
	Status          string  `json:"status"`
	ModelScheme     string  `json:"model_scheme"`
	ModelFeatures   int     `json:"model_features"`
	TrainedOnPoints int     `json:"trained_on_points"`
	CachedBags      int     `json:"cached_bags"`
	InFlight        int64   `json:"in_flight"`
	UptimeSec       float64 `json:"uptime_sec"`
	// Shares is the generator's MPS share profile (dataset
	// Config.SharesLabel), omitted for the equal split.
	Shares string `json:"shares,omitempty"`
}

// CacheEntryResponse is the GET /v1/cache/entry body: one published
// feature-cache entry, bit-exact (JSON float64 encoding round-trips
// exactly), served to peers filling a miss without re-simulating.
type CacheEntryResponse struct {
	Key      string    `json:"key"`
	X        []float64 `json:"x"`
	Fairness float64   `json:"fairness"`
}

// SnapshotFormat identifies the feature-cache snapshot schema.
const SnapshotFormat = "mapc-feature-snapshot-v1"

// Snapshot is the serialized feature cache: the warm-start unit a fresh
// replica restores from disk (via fsatomic) or fetches from a peer
// (GET /v1/cache/snapshot) so it doesn't re-simulate the hot working set.
// Entries are ordered most- to least-recently used, so restoring into a
// smaller budget keeps the hottest prefix.
type Snapshot struct {
	Format      string `json:"format"`
	ModelScheme string `json:"model_scheme"`
	K           int    `json:"k"`
	Width       int    `json:"width"`
	// Shares is the generator's MPS share profile (empty for the equal
	// split). Feature vectors are share-independent today, but the cache
	// namespace is share-qualified (see featureCache), so snapshots only
	// seed replicas measuring the same profile.
	Shares  string          `json:"shares,omitempty"`
	Entries []SnapshotEntry `json:"entries"`
}

// SnapshotEntry is one cached bag: its canonical key and raw features.
type SnapshotEntry struct {
	Key      string    `json:"key"`
	X        []float64 `json:"x"`
	Fairness float64   `json:"fairness"`
}
