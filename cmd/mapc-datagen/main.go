// Command mapc-datagen generates the 91-run training corpus of Section V-B
// and writes it as CSV (features + target) to stdout or a file.
//
// Generation is crash-safe when a checkpoint journal is enabled: every
// completed measurement point is durably appended to the journal before
// the run proceeds, SIGINT/SIGTERM stop the worker pool cleanly (in-flight
// measurements finish and commit, then the journal is flushed), and a
// later -resume run re-measures only the missing bags. The resumed corpus
// is bit-for-bit identical to an uninterrupted run at any worker count.
//
// Usage:
//
//	mapc-datagen                                  # CSV to stdout
//	mapc-datagen -o corpus.csv                    # CSV to a file
//	mapc-datagen -o corpus.csv -checkpoint corpus.journal   # crash-safe
//	mapc-datagen -o corpus.csv -checkpoint corpus.journal -resume  # continue
package main

import (
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"mapc/internal/dataset"
	"mapc/internal/features"
	"mapc/internal/profiling"
)

// exitInterrupted is the exit code for a clean signal-triggered stop with
// a flushed journal (128+SIGINT, the conventional shell encoding).
const exitInterrupted = 130

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	workers := flag.Int("workers", 0, "measurement worker goroutines (0 = NumCPU, 1 = serial); output is identical for every value")
	simCacheMB := flag.Int("simcache-mb", dataset.DefaultSimCacheMB, "simulation memo budget in MiB (0 = off); output is identical at every budget")
	k := flag.Int("k", 2, "bag size: applications co-scheduled per data point (2 = the paper's pair corpus, up to 8)")
	checkpoint := flag.String("checkpoint", "", "journal file for crash-safe generation: completed points are committed here and survive kills")
	resume := flag.Bool("resume", false, "continue from an existing -checkpoint journal, re-measuring only missing bags")
	benchmarks := flag.String("benchmarks", "", "comma-separated benchmark subset (empty = full Table-II suite)")
	batches := flag.String("batches", "", "comma-separated batch sizes (empty = 20,40,80,160,320)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of corpus generation to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a post-GC heap profile to this file on exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "mapc-datagen: profiling:", err)
		}
	}()

	cfg := dataset.DefaultConfig()
	cfg.Workers = *workers
	cfg.SimCacheMB = *simCacheMB
	cfg.K = *k
	if *benchmarks != "" {
		cfg.Benchmarks = splitList(*benchmarks)
	}
	if *batches != "" {
		bs, err := parseInts(*batches)
		if err != nil {
			fatal(fmt.Errorf("parsing -batches: %w", err))
		}
		cfg.BatchSizes = bs
		if len(bs) <= 2 {
			cfg.MixedPairs = 0 // mixed-batch pairs need >= 3 sizes
		}
	}
	gen, err := dataset.NewGenerator(cfg)
	if err != nil {
		fatal(err)
	}

	if *resume && *checkpoint == "" {
		fatal(errors.New("-resume requires -checkpoint"))
	}

	var corpus *dataset.Corpus
	if *checkpoint == "" {
		corpus, err = gen.Generate()
		if err != nil {
			fatal(err)
		}
	} else {
		corpus = generateCheckpointed(gen, cfg, *checkpoint, *resume)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if err := writeCSV(w, corpus); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mapc-datagen: wrote %d data points (%d features + target)\n",
		len(corpus.Points), len(corpus.FeatureNames))
	if st := gen.SimCacheStats(); st.Hits+st.Misses > 0 {
		fmt.Fprintf(os.Stderr, "mapc-datagen: simcache: %.1f%% hit rate (%d hits, %d misses, %d evictions, %.1f MiB resident)\n",
			100*st.HitRate(), st.Hits, st.Misses, st.Evictions, float64(st.Bytes)/(1<<20))
	}
}

// generateCheckpointed runs journaled generation with clean SIGINT/SIGTERM
// handling: on a signal the worker pool stops claiming bags, in-flight
// measurements finish and commit, the journal is flushed through an atomic
// rename, and the process exits with status 130 and resume instructions.
// It only returns on full success.
func generateCheckpointed(gen *dataset.Generator, cfg dataset.Config, path string, resume bool) *dataset.Corpus {
	var (
		j   *dataset.Journal
		err error
	)
	if resume {
		j, err = dataset.OpenJournal(path, cfg)
	} else {
		j, err = dataset.CreateJournal(path, cfg)
	}
	if err != nil {
		fatal(err)
	}
	bags, err := gen.Bags()
	if err != nil {
		fatal(err)
	}
	if resume {
		msg := fmt.Sprintf("mapc-datagen: resuming: %d/%d points journaled in %s", j.Len(), len(bags), path)
		if d := j.Dropped(); d > 0 {
			msg += fmt.Sprintf(" (%d torn record(s) discarded)", d)
		}
		fmt.Fprintln(os.Stderr, msg)
	} else {
		fmt.Fprintf(os.Stderr, "mapc-datagen: checkpointing %d points to %s\n", len(bags), path)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	corpus, err := gen.Resume(ctx, j)
	if err != nil {
		if cerr := j.Close(); cerr != nil { // flush: atomic commit + close
			fmt.Fprintln(os.Stderr, "mapc-datagen: closing journal:", cerr)
		}
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr,
				"mapc-datagen: interrupted; journal %s holds %d/%d points — rerun with -checkpoint %s -resume to continue\n",
				path, j.Len(), len(bags), path)
			os.Exit(exitInterrupted)
		}
		fatal(err)
	}
	if err := j.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mapc-datagen: journal complete (%d points); safe to delete %s\n", j.Len(), path)
	return corpus
}

func writeCSV(w io.Writer, corpus *dataset.Corpus) error {
	// The member-column count follows the corpus's bag size (recovered
	// from the feature width); at k=2 the header and rows are byte-for-byte
	// the legacy pair CSV.
	k, err := features.BagSizeForWidth(len(corpus.FeatureNames))
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	var header []string
	for i := 0; i < k; i++ {
		sfx := string(rune('a' + i))
		header = append(header, "bench_"+sfx, "batch_"+sfx)
	}
	header = append(header, "homogeneous")
	header = append(header, corpus.FeatureNames...)
	header = append(header, "gpu_bag_time_sec")
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range corpus.Points {
		p := &corpus.Points[i]
		var row []string
		for _, m := range p.Members {
			row = append(row, m.Benchmark, strconv.Itoa(m.Batch))
		}
		row = append(row, strconv.FormatBool(p.Homogeneous))
		for _, v := range p.X {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		row = append(row, strconv.FormatFloat(p.Y, 'g', -1, 64))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mapc-datagen:", err)
	os.Exit(1)
}
