// Quickstart: generate the paper's training corpus, train the decision-tree
// predictor on the full Table-IV feature set, and predict the GPU execution
// time of a heterogeneous 2-application bag the way an edge-server scheduler
// would before admitting it.
package main

import (
	"fmt"
	"log"

	"mapc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	fmt.Println("generating the 91-run training corpus (Section V-B)...")
	corpus, err := mapc.GenerateCorpus()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d data points, %d features each\n",
		len(corpus.Points), len(corpus.FeatureNames))

	predictor, err := mapc.Train(corpus, mapc.SchemeFull)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained tree: %d nodes, depth %d\n",
		predictor.Tree().NodeCount(), predictor.Tree().Depth())

	// Predict an unseen heterogeneous bag. FeaturesFor measures only what
	// a scheduler can observe cheaply: isolated CPU/GPU runs and a CPU
	// co-run for fairness — never the GPU bag itself.
	gen, err := mapc.NewGenerator(mapc.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	a := mapc.Member{Benchmark: "sift", Batch: 40}
	b := mapc.Member{Benchmark: "knn", Batch: 20}
	x, fairness, err := gen.FeaturesFor(a, b)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := predictor.PredictRaw(x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbag %v + %v (CPU fairness %.3f)\n", a, b, fairness)
	fmt.Printf("predicted GPU bag time: %.3f ms\n", pred*1e3)

	// Compare against the simulated ground truth (which required actually
	// running the bag on the GPU model).
	truth, err := gen.MeasurePoint(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated GPU bag time: %.3f ms\n", truth.Y*1e3)
}
