package gpusim

import (
	"fmt"
	"reflect"
	"testing"

	"mapc/internal/phasesum"
	"mapc/internal/simcache"
	"mapc/internal/trace"
)

// Property tests for the fractional-share extension: explicit uniform
// shares are the nil equal split (bit-identically, at every tier), and a
// client's bag time never improves as its share shrinks.

// TestUniformSharesBitIdenticalToNil: a 1/k share vector must reproduce
// the nil-shares result bit-for-bit at every fidelity tier. Power-of-two
// k keeps the float algebra exact: sum(1/k × k) == 1 and SMs·(1/k)/1 is
// a multiplication by an exact power of two, so the smShares agree to
// the last bit with SMs/k.
func TestUniformSharesBitIdenticalToNil(t *testing.T) {
	cfg := DefaultConfig()
	memo := simcache.MustNew(256 << 20)
	for _, k := range []int{2, 4, 8} {
		ws := make([]*trace.Workload, k)
		for i := range ws {
			if i%2 == 0 {
				ws[i] = computeKernel(fmt.Sprintf("c%d", i))
			} else {
				ws[i] = memKernel(fmt.Sprintf("m%d", i))
			}
		}
		uniform := make([]float64, k)
		for i := range uniform {
			uniform[i] = 1 / float64(k)
		}
		for _, fid := range []phasesum.Fidelity{phasesum.Exact, phasesum.Mixed, phasesum.Fast} {
			want, wantKind, err := RunMemoSharesFidelity(cfg, memo, ws, nil, fid)
			if err != nil {
				t.Fatal(err)
			}
			got, gotKind, err := RunMemoSharesFidelity(cfg, memo, ws, uniform, fid)
			if err != nil {
				t.Fatal(err)
			}
			if gotKind != wantKind {
				t.Fatalf("k=%d fidelity %s: uniform shares changed the tier decision (%+v vs %+v)", k, fid, gotKind, wantKind)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("k=%d fidelity %s: explicit uniform shares diverged from nil", k, fid)
			}
		}
	}
}

// TestShareSkewMonotonic: shrinking a client's share must never improve
// its bag time, at the exact tier and at the analytic fast tier.
func TestShareSkewMonotonic(t *testing.T) {
	cfg := DefaultConfig()
	memo := simcache.MustNew(128 << 20)
	ws := []*trace.Workload{memKernel("victim"), computeKernel("rival")}
	weights := []float64{0.5, 0.4, 0.3, 0.2, 0.1, 0.05}
	for _, fid := range []phasesum.Fidelity{phasesum.Exact, phasesum.Fast} {
		prev := 0.0
		for _, w := range weights {
			res, _, err := RunMemoSharesFidelity(cfg, memo, ws, []float64{w, 1 - w}, fid)
			if err != nil {
				t.Fatal(err)
			}
			got := res[0].TimeSec
			if got < prev {
				t.Fatalf("fidelity %s: client 0 improved from %v to %v when its share shrank to %v", fid, prev, got, w)
			}
			prev = got
		}
	}
}
