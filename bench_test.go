package mapc

// The benchmark harness regenerates every evaluation artifact of the paper
// (Figures 1-12) plus the substrate micro-benchmarks and the ablation
// studies DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Figure benchmarks share one experiment environment: the first invocation
// pays for corpus generation (excluded from timing via a warm-up call);
// iterations then measure the artifact computation itself. Absolute paper
// numbers are not expected to match (the substrate is a simulator); the
// shapes are asserted by the test suite and recorded in EXPERIMENTS.md.

import (
	"io"
	"sync"
	"testing"

	"mapc/internal/core"
	"mapc/internal/cpusim"
	"mapc/internal/dataset"
	"mapc/internal/experiments"
	"mapc/internal/gpusim"
	"mapc/internal/ml"
	"mapc/internal/trace"
	"mapc/internal/vision"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
)

func sharedEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() { benchEnv = experiments.DefaultEnv() })
	return benchEnv
}

// benchFigure measures one artifact regeneration after warming the shared
// environment's caches.
func benchFigure(b *testing.B, fn func(*experiments.Env) (*experiments.Table, error)) {
	env := sharedEnv(b)
	tbl, err := fn(env) // warm-up: corpus + LOOCV caches
	if err != nil {
		b.Fatal(err)
	}
	if err := tbl.Render(io.Discard); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err := fn(env)
		if err != nil {
			b.Fatal(err)
		}
		if err := tbl.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1(b *testing.B)  { benchFigure(b, experiments.Figure1) }
func BenchmarkFigure2(b *testing.B)  { benchFigure(b, experiments.Figure2) }
func BenchmarkFigure3(b *testing.B)  { benchFigure(b, experiments.Figure3) }
func BenchmarkFigure4(b *testing.B)  { benchFigure(b, experiments.Figure4) }
func BenchmarkFigure5(b *testing.B)  { benchFigure(b, experiments.Figure5) }
func BenchmarkFigure6(b *testing.B)  { benchFigure(b, experiments.Figure6) }
func BenchmarkFigure7(b *testing.B)  { benchFigure(b, experiments.Figure7) }
func BenchmarkFigure8(b *testing.B)  { benchFigure(b, experiments.Figure8) }
func BenchmarkFigure9(b *testing.B)  { benchFigure(b, experiments.Figure9) }
func BenchmarkFigure10(b *testing.B) { benchFigure(b, experiments.Figure10) }
func BenchmarkFigure11(b *testing.B) { benchFigure(b, experiments.Figure11) }
func BenchmarkFigure12(b *testing.B) { benchFigure(b, experiments.Figure12) }

// BenchmarkCorpusGeneration measures the full Section V-B data-collection
// pipeline: 45 instrumented vision runs, isolated CPU/GPU simulations, and
// 91 co-scheduled bag measurements.
func BenchmarkCorpusGeneration(b *testing.B) {
	cfg := dataset.DefaultConfig()
	cfg.BatchSizes = []int{20, 40} // keep individual iterations tractable
	cfg.MixedPairs = 0
	for i := 0; i < b.N; i++ {
		gen, err := dataset.NewGenerator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := gen.Generate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVisionSuite measures one instrumented pass over all nine
// Table-II benchmarks at the standard batch.
func BenchmarkVisionSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, bench := range vision.All() {
			if _, err := vision.Run(bench, 20, 42); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchWorkload(b *testing.B) *trace.Workload {
	b.Helper()
	res, err := vision.Run(vision.NewSIFT(), 20, 42)
	if err != nil {
		b.Fatal(err)
	}
	return res.Workload
}

// BenchmarkGPUSimSingle measures one isolated GPU simulation.
func BenchmarkGPUSimSingle(b *testing.B) {
	w := benchWorkload(b)
	cfg := gpusim.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gpusim.Run(cfg, []*trace.Workload{w}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGPUSimBag measures a 2-client phased MPS simulation.
func BenchmarkGPUSimBag(b *testing.B) {
	w := benchWorkload(b)
	cfg := gpusim.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gpusim.Run(cfg, []*trace.Workload{w.Clone(), w.Clone()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCPUSimBag measures a 2-app phased multicore co-run.
func BenchmarkCPUSimBag(b *testing.B) {
	w := benchWorkload(b)
	cfg := cpusim.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := cpusim.Run(cfg, []cpusim.App{
			{Workload: w.Clone(), Threads: 16},
			{Workload: w.Clone(), Threads: 16},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeTrain measures fitting the predictor on the 91-run corpus.
func BenchmarkTreeTrain(b *testing.B) {
	env := sharedEnv(b)
	corpus, err := env.Corpus()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Train(corpus, core.SchemeFull, core.DefaultTreeParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredict measures single-bag inference on a trained model.
func BenchmarkPredict(b *testing.B) {
	env := sharedEnv(b)
	corpus, err := env.Corpus()
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.Train(corpus, core.SchemeFull, core.DefaultTreeParams())
	if err != nil {
		b.Fatal(err)
	}
	x := corpus.Points[0].X
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.PredictVector(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTreeDepth sweeps the depth bound — the hyper-parameter
// Section II-B3 calls out — reporting LOOCV cost at each setting.
func BenchmarkAblationTreeDepth(b *testing.B) {
	env := sharedEnv(b)
	corpus, err := env.Corpus()
	if err != nil {
		b.Fatal(err)
	}
	for _, depth := range []int{2, 4, 8, 0} {
		name := "unbounded"
		if depth > 0 {
			name = "depth" + string(rune('0'+depth))
		}
		b.Run(name, func(b *testing.B) {
			params := core.TreeParams{MaxDepth: depth, MinSamplesLeaf: 1, MinSamplesSplit: 2}
			for i := 0; i < b.N; i++ {
				if _, err := core.LOOCV(corpus, core.SchemeFull, params, core.HoldOutOwn); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationModels compares the tree against the paper's rejected
// alternatives (OLS, SVR) on the same feature matrix — the Section V-D
// model-choice ablation.
func BenchmarkAblationModels(b *testing.B) {
	env := sharedEnv(b)
	corpus, err := env.Corpus()
	if err != nil {
		b.Fatal(err)
	}
	d := corpus.Dataset()
	factories := []struct {
		name string
		mk   ml.ModelFactory
	}{
		{"tree", func() ml.Regressor { return ml.NewTreeRegressor() }},
		{"ols", func() ml.Regressor { return ml.NewLinearRegression() }},
		{"svr", func() ml.Regressor { return ml.NewSVR() }},
	}
	for _, f := range factories {
		b.Run(f.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ml.HoldOut(d, 0.2, 7, f.mk); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
