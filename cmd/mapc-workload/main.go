// Command mapc-workload inspects the instrumented description of one
// benchmark run: its phases, instruction mixes, footprints and the
// simulated CPU/GPU timing decomposition. It can also archive the workload
// as JSON for replay.
//
// Usage:
//
//	mapc-workload -bench sift -batch 40
//	mapc-workload -bench knn -batch 80 -json workload.json
//	mapc-workload -bench orb -gpu-phases      # per-kernel GPU breakdown
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"mapc/internal/gpusim"
	"mapc/internal/isa"
	"mapc/internal/mica"
	"mapc/internal/trace"
	"mapc/internal/vision"
)

func main() {
	benchName := flag.String("bench", "sift", "benchmark to instrument")
	batch := flag.Int("batch", 20, "batch size")
	seed := flag.Uint64("seed", 42, "scene synthesis seed")
	jsonOut := flag.String("json", "", "archive the workload to this JSON file")
	gpuPhases := flag.Bool("gpu-phases", false, "print the per-kernel GPU timing decomposition")
	flag.Parse()

	b, err := vision.ByName(*benchName)
	if err != nil {
		fatal(err)
	}
	res, err := vision.Run(b, *batch, *seed)
	if err != nil {
		fatal(err)
	}
	w := res.Workload

	fmt.Printf("workload %s batch=%d: %d phases, %d instructions, transfer %d bytes\n",
		w.Benchmark, w.BatchSize, len(w.Phases), w.Instructions(), w.TransferBytes)
	mix, err := mica.Analyze(w)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("mix: %v\n", mix)
	fmt.Printf("functional summary: %v\n\n", res.Summary)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\tinstr\tmem%\tctl%\tfootprint\tpattern\treuse\tparallelism\tlaunches")
	for i := range w.Phases {
		p := &w.Phases[i]
		total := p.Counts.Total()
		memPct, ctlPct := 0.0, 0.0
		if total > 0 {
			memPct = float64(p.Counts[isa.MEM]) / float64(total) * 100
			ctlPct = float64(p.Counts[isa.Control]) / float64(total) * 100
		}
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.0f\t%d\t%s\t%.2f\t%d\t%d\n",
			p.Name, total, memPct, ctlPct, p.Footprint, p.Pattern,
			p.Reuse, p.Parallelism, p.LaunchCount())
	}
	if err := tw.Flush(); err != nil {
		fatal(err)
	}

	if *gpuPhases {
		fmt.Println("\nGPU per-kernel decomposition (isolated run):")
		bd, err := gpusim.PhaseBreakdown(gpusim.DefaultConfig(), []*trace.Workload{w}, 0)
		if err != nil {
			fatal(err)
		}
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "phase\tcompute cyc\tstall cyc\ttotal cyc\toccupancy\tL2 miss\tTLB miss")
		for _, p := range bd {
			fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.0f\t%.2f\t%.3f\t%.3f\n",
				p.Name, p.ComputeCycles, p.StallCycles, p.TotalCycles,
				p.Occupancy, p.L2MissRate, p.TLBMissRate)
		}
		if err := tw.Flush(); err != nil {
			fatal(err)
		}
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		if err := w.WriteJSON(f); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mapc-workload: archived to %s\n", *jsonOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mapc-workload:", err)
	os.Exit(1)
}
