package ml

import (
	"math"
	"testing"

	"mapc/internal/xrand"
)

func TestForestFitsSmoothFunction(t *testing.T) {
	d := &Dataset{}
	rng := xrand.New(29)
	for i := 0; i < 200; i++ {
		x0 := rng.Float64() * 4
		x1 := rng.Float64() * 4
		d.X = append(d.X, []float64{x0, x1})
		d.Y = append(d.Y, x0*x0+x1)
	}
	f := NewForestRegressor()
	f.Trees = 40
	f.FeatureFraction = 1
	if err := f.Fit(d); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 40 {
		t.Fatalf("ensemble size %d", f.Size())
	}
	var sumAbs float64
	for i, x := range d.X {
		p, err := f.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		sumAbs += math.Abs(p - d.Y[i])
	}
	if mae := sumAbs / float64(len(d.X)); mae > 1.5 {
		t.Fatalf("forest MAE %v on smooth target", mae)
	}
}

func TestForestVarianceReduction(t *testing.T) {
	// With a noisy target, the forest's held-out error should not exceed
	// a single unpruned tree's by much — and usually improves it.
	train := &Dataset{}
	test := &Dataset{}
	rng := xrand.New(31)
	fill := func(d *Dataset, n int) {
		for i := 0; i < n; i++ {
			x := rng.Float64() * 10
			d.X = append(d.X, []float64{x})
			d.Y = append(d.Y, 10+x+rng.NormFloat64())
		}
	}
	fill(train, 120)
	fill(test, 60)

	tree := NewTreeRegressor()
	if err := tree.Fit(train); err != nil {
		t.Fatal(err)
	}
	forest := NewForestRegressor()
	forest.Trees = 60
	forest.FeatureFraction = 1
	if err := forest.Fit(train); err != nil {
		t.Fatal(err)
	}
	tp, _ := tree.PredictAll(test.X)
	fp, _ := forest.PredictAll(test.X)
	treeMSE, _ := MSE(test.Y, tp)
	forestMSE, _ := MSE(test.Y, fp)
	if forestMSE > treeMSE*1.1 {
		t.Fatalf("forest MSE %v worse than single tree %v", forestMSE, treeMSE)
	}
}

func TestForestDeterminism(t *testing.T) {
	d := xorDataset()
	mk := func() *ForestRegressor {
		f := NewForestRegressor()
		f.Trees = 10
		f.Seed = 99
		return f
	}
	a, b := mk(), mk()
	if err := a.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(d); err != nil {
		t.Fatal(err)
	}
	for _, x := range d.X {
		pa, _ := a.Predict(x)
		pb, _ := b.Predict(x)
		if pa != pb {
			t.Fatal("same-seed forests diverge")
		}
	}
}

func TestForestErrors(t *testing.T) {
	f := NewForestRegressor()
	if _, err := f.Predict([]float64{1}); err == nil {
		t.Error("unfitted Predict succeeded")
	}
	f.Trees = 0
	if err := f.Fit(xorDataset()); err == nil {
		t.Error("zero trees accepted")
	}
	f = NewForestRegressor()
	f.FeatureFraction = 2
	if err := f.Fit(xorDataset()); err == nil {
		t.Error("feature fraction > 1 accepted")
	}
	f = NewForestRegressor()
	f.Trees = 5
	if err := f.Fit(xorDataset()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Predict([]float64{1}); err == nil {
		t.Error("wrong-width vector accepted")
	}
}
