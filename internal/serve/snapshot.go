// Warm-start: snapshot/restore of the feature cache, and peer fill.
//
// A fresh replica joining the serving tier starts with a cold feature
// cache and would re-simulate the entire hot working set — minutes of
// wasted compute for state a sibling already holds. Three complementary
// mechanisms avoid that, all bit-exact because JSON encodes float64 with
// the shortest round-tripping representation:
//
//  1. Disk snapshot: SaveSnapshotFile persists the cache (MRU-first)
//     through internal/fsatomic, so a crash mid-save leaves the previous
//     complete snapshot; LoadSnapshotFile seeds it back at boot.
//  2. Peer snapshot: GET /v1/cache/snapshot streams the same document over
//     HTTP; WarmFromPeer pulls and seeds it (mapc-serve -warm-from).
//  3. Peer fill: with SetPeerFill installed, a cache miss first asks each
//     peer's GET /v1/cache/entry?key=… for the published entry before
//     falling back to local simulation (mapc-serve -peers).
//
// Snapshots carry the model scheme, bag size and feature width; a replica
// refuses to seed entries from a mismatched model, since the vectors would
// be meaningless to its predictor.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"time"

	"mapc/internal/fsatomic"
)

// Snapshot captures the current feature cache, most-recently-used first.
func (s *Server) Snapshot() Snapshot {
	return Snapshot{
		Format:      SnapshotFormat,
		ModelScheme: s.cfg.Model.Scheme().Name,
		K:           s.trainedK,
		Width:       s.cfg.Model.NumFeatures(),
		Shares:      s.cache.shares,
		Entries:     s.cache.entries(),
	}
}

// WriteSnapshot streams the snapshot as JSON.
func (s *Server) WriteSnapshot(w io.Writer) error {
	return json.NewEncoder(w).Encode(s.Snapshot())
}

// SeedSnapshot validates snap against the loaded model and seeds every
// entry into the feature cache (resident entries win; the LRU budget
// applies, keeping the hottest prefix of an oversized snapshot). It
// returns how many entries were seeded and resident.
func (s *Server) SeedSnapshot(snap *Snapshot) (int, error) {
	if snap.Format != SnapshotFormat {
		return 0, fmt.Errorf("serve: snapshot format %q, want %q", snap.Format, SnapshotFormat)
	}
	if snap.ModelScheme != s.cfg.Model.Scheme().Name {
		return 0, fmt.Errorf("serve: snapshot from a scheme-%q model cannot seed a scheme-%q server",
			snap.ModelScheme, s.cfg.Model.Scheme().Name)
	}
	width := s.cfg.Model.NumFeatures()
	if snap.Width != width || snap.K != s.trainedK {
		return 0, fmt.Errorf("serve: snapshot shape (k=%d, width=%d) does not match the loaded model (k=%d, width=%d)",
			snap.K, snap.Width, s.trainedK, width)
	}
	if snap.Shares != s.cache.shares {
		return 0, fmt.Errorf("serve: snapshot from share profile %q cannot seed a server measuring profile %q",
			snap.Shares, s.cache.shares)
	}
	seeded := 0
	for i, e := range snap.Entries {
		if e.Key == "" {
			return seeded, fmt.Errorf("serve: snapshot entry %d has an empty key", i)
		}
		if len(e.X) != width {
			return seeded, fmt.Errorf("serve: snapshot entry %d (%s) carries %d features, want %d", i, e.Key, len(e.X), width)
		}
		if s.cache.seed(e.Key, e.X, e.Fairness) {
			seeded++
		}
	}
	return seeded, nil
}

// ReadSnapshot decodes one snapshot document from r and seeds it.
func (s *Server) ReadSnapshot(r io.Reader) (int, error) {
	var snap Snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return 0, fmt.Errorf("serve: decoding snapshot: %w", err)
	}
	return s.SeedSnapshot(&snap)
}

// SaveSnapshotFile atomically persists the snapshot to path (temp + fsync
// + rename): a crash mid-save leaves the previous complete snapshot.
func (s *Server) SaveSnapshotFile(path string) error {
	return fsatomic.WriteFile(path, s.WriteSnapshot)
}

// LoadSnapshotFile seeds the cache from a SaveSnapshotFile document.
func (s *Server) LoadSnapshotFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return s.ReadSnapshot(f)
}

// WarmFromPeer pulls a peer replica's GET /v1/cache/snapshot and seeds the
// local cache — the join-time warm start of a fresh replica.
func (s *Server) WarmFromPeer(ctx context.Context, client *http.Client, baseURL string) (int, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/cache/snapshot", nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("serve: fetching snapshot from %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("serve: peer %s answered %d to the snapshot request", baseURL, resp.StatusCode)
	}
	return s.ReadSnapshot(resp.Body)
}

// SetPeerFill installs the peer-fill hook: a feature-cache miss asks each
// peer in turn for its published entry (GET /v1/cache/entry) before
// simulating locally. timeout bounds each probe; peers that error or miss
// are skipped silently — peer fill is an optimization, never a dependency.
// Call before serving begins.
func (s *Server) SetPeerFill(client *http.Client, peers []string, timeout time.Duration) {
	if len(peers) == 0 {
		return
	}
	if client == nil {
		client = http.DefaultClient
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	width := s.cfg.Model.NumFeatures()
	s.cache.fill = func(key string) ([]float64, float64, bool) {
		for _, p := range peers {
			x, fairness, ok := fetchPeerEntry(client, p, key, timeout, width)
			if ok {
				s.metrics.PeerFillHit()
				return x, fairness, true
			}
		}
		s.metrics.PeerFillMiss()
		return nil, 0, false
	}
}

// fetchPeerEntry asks one peer for one published cache entry.
func fetchPeerEntry(client *http.Client, baseURL, key string, timeout time.Duration, width int) ([]float64, float64, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	u := baseURL + "/v1/cache/entry?key=" + url.QueryEscape(key)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, 0, false
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, false
	}
	var e CacheEntryResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		return nil, 0, false
	}
	if e.Key != key || len(e.X) != width {
		return nil, 0, false // a confused peer must not poison the cache
	}
	return e.X, e.Fairness, true
}

// handleCacheSnapshot serves GET /v1/cache/snapshot: the whole published
// feature cache, MRU-first, for peer warm starts.
func (s *Server) handleCacheSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.metrics.ObserveOther(writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{"GET only"}))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = s.WriteSnapshot(w)
	s.metrics.ObserveOther(http.StatusOK)
}

// handleCacheEntry serves GET /v1/cache/entry?key=<canonical bag key>: one
// published entry, or 404 when the bag is absent or still computing (peer
// fill must never block on another replica's in-flight simulation).
func (s *Server) handleCacheEntry(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.metrics.ObserveOther(writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{"GET only"}))
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		s.metrics.ObserveOther(writeJSON(w, http.StatusBadRequest, ErrorResponse{"missing key parameter"}))
		return
	}
	fv, ok := s.cache.peek(key)
	if !ok {
		s.metrics.ObserveOther(writeJSON(w, http.StatusNotFound, ErrorResponse{fmt.Sprintf("bag %q is not cached here", key)}))
		return
	}
	s.metrics.ObserveOther(writeJSON(w, http.StatusOK, CacheEntryResponse{Key: key, X: fv.x, Fairness: fv.fairness}))
}
