package core

import (
	"fmt"
	"sort"

	"mapc/internal/dataset"
	"mapc/internal/features"
	"mapc/internal/ml"
	"mapc/internal/parallel"
)

// Protocol selects which data points a LOOCV fold holds out for the
// benchmark under test. The paper (Section V-D1) says "we leave all the
// data points corresponding to that benchmark"; the two defensible readings
// are implemented.
type Protocol int

const (
	// HoldOutOwn holds out the benchmark's own (homogeneous) data points
	// — its five batch-size variants — leaving heterogeneous bags that
	// include the benchmark in training. This is the reading consistent
	// with "we have multiple data points corresponding to a benchmark"
	// and is the default for Figure 4.
	HoldOutOwn Protocol = iota
	// HoldOutContaining holds out every bag containing the benchmark —
	// the strictly harder, fully unseen-benchmark protocol, reported as
	// an extra experiment.
	HoldOutContaining
)

// String names the protocol for reports.
func (p Protocol) String() string {
	switch p {
	case HoldOutOwn:
		return "hold-out-own"
	case HoldOutContaining:
		return "hold-out-containing"
	default:
		return fmt.Sprintf("core.Protocol(%d)", int(p))
	}
}

// LOOCVResult reports one fold of the Figure-4 protocol: the held-out
// benchmark's data points form the test set.
type LOOCVResult struct {
	// Benchmark is the held-out benchmark.
	Benchmark string
	// MeanRelErr is the mean relative error (%) over the fold's points.
	MeanRelErr float64
	// PerPoint holds each test point's relative error (%).
	PerPoint []float64
	// PointIdx holds the corpus indices of the test points.
	PointIdx []int
	// Truth and Pred are the raw target/prediction pairs.
	Truth, Pred []float64
	// Paths holds each test point's decision path through the fold's tree.
	Paths [][]ml.DecisionStep
	// PathFeatureNames names the features the path indices refer to.
	PathFeatureNames []string
}

// LOOCV runs leave-one-benchmark-out cross-validation with the given scheme
// and hold-out protocol (Section V-D1). Folds run on the default worker
// pool (runtime.NumCPU()); see LOOCVWorkers for an explicit bound.
func LOOCV(c *dataset.Corpus, scheme Scheme, params TreeParams, protocol Protocol) ([]LOOCVResult, error) {
	return LOOCVWorkers(c, scheme, params, protocol, 0)
}

// LOOCVWorkers is LOOCV with an explicit fold-level worker bound: each fold
// trains an independent tree on an independent row subset, so folds fan out
// over min(workers, folds) goroutines. workers <= 0 selects
// runtime.NumCPU(); 1 is the exact serial path. Results are ordered by
// benchmark name regardless of worker count, and fold outputs are
// bit-for-bit identical to a serial run (tree fitting is deterministic and
// each fold copies its feature rows before training).
func LOOCVWorkers(c *dataset.Corpus, scheme Scheme, params TreeParams, protocol Protocol, workers int) ([]LOOCVResult, error) {
	if c == nil || len(c.Points) == 0 {
		return nil, fmt.Errorf("core: empty corpus")
	}
	full := c.Dataset()
	benches := c.BenchmarkNames()
	out := make([]LOOCVResult, len(benches))
	err := parallel.ForEach(workers, len(benches), func(bi int) error {
		res, err := runFold(c, full, benches[bi], scheme, params, protocol)
		if err != nil {
			return err
		}
		out[bi] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// runFold trains and evaluates one LOOCV fold. It only reads the shared
// corpus and dataset view; all per-fold state is private, which is what
// makes fold-level parallelism race-free.
func runFold(c *dataset.Corpus, full *ml.Dataset, bench string, scheme Scheme, params TreeParams, protocol Protocol) (LOOCVResult, error) {
	var trainIdx, testIdx []int
	for i := range c.Points {
		p := &c.Points[i]
		var held bool
		switch protocol {
		case HoldOutContaining:
			held = c.ContainsBenchmark(i, bench)
		default:
			held = p.Homogeneous && p.Members[0].Benchmark == bench
		}
		if held {
			testIdx = append(testIdx, i)
		} else {
			trainIdx = append(trainIdx, i)
		}
	}
	if len(testIdx) == 0 || len(trainIdx) == 0 {
		return LOOCVResult{}, fmt.Errorf("core: degenerate LOOCV fold for %q", bench)
	}
	trainD := full.Subset(trainIdx)
	p, err := trainOn(trainD, c, scheme, params)
	if err != nil {
		return LOOCVResult{}, fmt.Errorf("core: fold %q: %w", bench, err)
	}

	res := LOOCVResult{
		Benchmark:        bench,
		PointIdx:         testIdx,
		PathFeatureNames: p.FeatureNames(),
	}
	for _, ti := range testIdx {
		pt := &c.Points[ti]
		pred, err := p.PredictVector(pt.X)
		if err != nil {
			return LOOCVResult{}, fmt.Errorf("core: fold %q point %d: %w", bench, ti, err)
		}
		path, err := p.PathVector(pt.X)
		if err != nil {
			return LOOCVResult{}, fmt.Errorf("core: fold %q point %d: %w", bench, ti, err)
		}
		res.Truth = append(res.Truth, pt.Y)
		res.Pred = append(res.Pred, pred)
		res.Paths = append(res.Paths, path)
	}
	perPoint, err := ml.RelativeErrors(res.Truth, res.Pred)
	if err != nil {
		return LOOCVResult{}, fmt.Errorf("core: fold %q: %w", bench, err)
	}
	res.PerPoint = perPoint
	res.MeanRelErr = ml.Mean(perPoint)
	return res, nil
}

// MeanLOOCVError returns the mean of the per-benchmark mean relative errors
// — the paper's headline 9% number.
func MeanLOOCVError(results []LOOCVResult) float64 {
	if len(results) == 0 {
		return 0
	}
	var s float64
	for _, r := range results {
		s += r.MeanRelErr
	}
	return s / float64(len(results))
}

// EvaluateScheme runs LOOCV under the scheme and returns the mean relative
// error — one bar of Figures 5-9.
func EvaluateScheme(c *dataset.Corpus, scheme Scheme, params TreeParams, protocol Protocol) (float64, error) {
	res, err := LOOCV(c, scheme, params, protocol)
	if err != nil {
		return 0, err
	}
	return MeanLOOCVError(res), nil
}

// PathStats aggregates decision-path usage over all LOOCV test points — the
// raw material of Figures 10-12.
type PathStats struct {
	// KindNames lists the feature kinds in Table-IV order.
	KindNames []string
	// PerPoint[i][kind] counts how many decision nodes on test point i's
	// path compared a feature of that kind (Figure 11/12 rows).
	PerPoint []map[string]int
	// Presence[kind] is the percentage of test points whose path used the
	// kind at least once (Figure 10 bars).
	Presence map[string]float64
	// MeanUses[kind] is the average number of path nodes using the kind.
	MeanUses map[string]float64
}

// AnalyzePaths reduces LOOCV results to per-feature-kind decision-path
// statistics. Replicated columns (cpu_time_a, cpu_time_b, ...) aggregate
// into their kind.
func AnalyzePaths(results []LOOCVResult) (*PathStats, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("core: no LOOCV results")
	}
	stats := &PathStats{
		KindNames: features.KindNames(),
		Presence:  map[string]float64{},
		MeanUses:  map[string]float64{},
	}
	for _, r := range results {
		for _, path := range r.Paths {
			counts := map[string]int{}
			for _, step := range path {
				if step.Feature < 0 || step.Feature >= len(r.PathFeatureNames) {
					return nil, fmt.Errorf("core: path feature index %d out of range", step.Feature)
				}
				kind := features.Kind(r.PathFeatureNames[step.Feature])
				counts[kind]++
			}
			stats.PerPoint = append(stats.PerPoint, counts)
		}
	}
	n := float64(len(stats.PerPoint))
	for _, kind := range stats.KindNames {
		var present, uses float64
		for _, counts := range stats.PerPoint {
			if counts[kind] > 0 {
				present++
			}
			uses += float64(counts[kind])
		}
		stats.Presence[kind] = present / n * 100
		stats.MeanUses[kind] = uses / n
	}
	return stats, nil
}

// TopKinds returns the feature kinds sorted by descending presence.
func (s *PathStats) TopKinds() []string {
	out := append([]string(nil), s.KindNames...)
	sort.SliceStable(out, func(i, j int) bool {
		return s.Presence[out[i]] > s.Presence[out[j]]
	})
	return out
}
