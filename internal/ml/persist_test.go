package ml

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTreeJSONRoundTrip(t *testing.T) {
	d := xorDataset()
	tree := NewTreeRegressor()
	tree.MaxDepth = 5
	if err := tree.Fit(d); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	var loaded TreeRegressor
	if err := json.Unmarshal(data, &loaded); err != nil {
		t.Fatal(err)
	}
	if loaded.MaxDepth != 5 {
		t.Errorf("MaxDepth %d after round trip", loaded.MaxDepth)
	}
	if loaded.NodeCount() != tree.NodeCount() {
		t.Errorf("node count %d vs %d", loaded.NodeCount(), tree.NodeCount())
	}
	for i, x := range d.X {
		a, err := tree.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("point %d: %v vs %v after round trip", i, a, b)
		}
	}
	// Decision paths must also survive.
	pa, _ := tree.DecisionPath(d.X[0])
	pb, _ := loaded.DecisionPath(d.X[0])
	if len(pa) != len(pb) {
		t.Errorf("path lengths %d vs %d", len(pa), len(pb))
	}
}

func TestTreeMarshalUnfitted(t *testing.T) {
	if _, err := json.Marshal(NewTreeRegressor()); err == nil {
		t.Fatal("unfitted tree serialized")
	}
}

func TestTreeUnmarshalRejectsGarbage(t *testing.T) {
	cases := []string{
		`{}`,
		`{"format":"wrong","n_features":1,"nodes":[{"feature":-1,"value":1}]}`,
		`{"format":"mapc-tree-v1","n_features":0,"nodes":[{"feature":-1,"value":1}]}`,
		`{"format":"mapc-tree-v1","n_features":1,"nodes":[]}`,
		// split feature out of range
		`{"format":"mapc-tree-v1","n_features":1,"nodes":[{"feature":3,"left":1,"right":2,"value":1}]}`,
		// child index out of range
		`{"format":"mapc-tree-v1","n_features":1,"nodes":[{"feature":0,"left":5,"right":6,"value":1}]}`,
		// backward child reference (would loop)
		`{"format":"mapc-tree-v1","n_features":1,"nodes":[
			{"feature":0,"left":1,"right":2,"value":1},
			{"feature":-1,"value":1},
			{"feature":0,"left":1,"right":1,"value":1}]}`,
	}
	for i, c := range cases {
		var tr TreeRegressor
		if err := json.Unmarshal([]byte(c), &tr); err == nil {
			t.Errorf("case %d accepted: %s", i, strings.TrimSpace(c))
		}
	}
}
