package ml

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mapc/internal/xrand"
)

func xorDataset() *Dataset {
	// A dataset a single linear split cannot fit but a depth-2 tree can.
	return &Dataset{
		FeatureNames: []string{"x0", "x1"},
		X: [][]float64{
			{0, 0}, {0, 1}, {1, 0}, {1, 1},
			{0.1, 0.1}, {0.1, 0.9}, {0.9, 0.1}, {0.9, 0.9},
		},
		Y: []float64{1, 5, 5, 1, 1, 5, 5, 1},
	}
}

func TestTreeFitsTrainingDataExactly(t *testing.T) {
	d := xorDataset()
	tree := NewTreeRegressor()
	if err := tree.Fit(d); err != nil {
		t.Fatal(err)
	}
	for i, x := range d.X {
		got, err := tree.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-d.Y[i]) > 1e-12 {
			t.Errorf("point %d predicted %v, want %v", i, got, d.Y[i])
		}
	}
}

func TestTreeConstantTarget(t *testing.T) {
	d := &Dataset{
		X: [][]float64{{1}, {2}, {3}},
		Y: []float64{7, 7, 7},
	}
	tree := NewTreeRegressor()
	if err := tree.Fit(d); err != nil {
		t.Fatal(err)
	}
	if tree.NodeCount() != 1 {
		t.Errorf("constant target grew %d nodes", tree.NodeCount())
	}
	got, _ := tree.Predict([]float64{99})
	if got != 7 {
		t.Errorf("predicted %v", got)
	}
}

func TestTreeStepFunctionRecovery(t *testing.T) {
	// y = 10 for x < 0.5, else 20; the split threshold must land between
	// the two clusters.
	d := &Dataset{X: [][]float64{}, Y: []float64{}}
	rng := xrand.New(3)
	for i := 0; i < 50; i++ {
		x := rng.Float64() * 0.4
		d.X = append(d.X, []float64{x})
		d.Y = append(d.Y, 10)
		d.X = append(d.X, []float64{x + 0.6})
		d.Y = append(d.Y, 20)
	}
	tree := NewTreeRegressor()
	if err := tree.Fit(d); err != nil {
		t.Fatal(err)
	}
	for _, probe := range []struct{ x, want float64 }{
		{0.0, 10}, {0.3, 10}, {0.7, 20}, {1.0, 20},
	} {
		got, _ := tree.Predict([]float64{probe.x})
		if got != probe.want {
			t.Errorf("f(%v) = %v, want %v", probe.x, got, probe.want)
		}
	}
	if tree.Depth() != 1 {
		t.Errorf("step function needed depth %d", tree.Depth())
	}
}

func TestTreeMaxDepth(t *testing.T) {
	d := xorDataset()
	tree := NewTreeRegressor()
	tree.MaxDepth = 1
	if err := tree.Fit(d); err != nil {
		t.Fatal(err)
	}
	if got := tree.Depth(); got > 1 {
		t.Fatalf("depth %d exceeds MaxDepth 1", got)
	}
}

func TestTreeMinSamplesLeaf(t *testing.T) {
	d := xorDataset()
	tree := NewTreeRegressor()
	tree.MinSamplesLeaf = 4
	if err := tree.Fit(d); err != nil {
		t.Fatal(err)
	}
	// Every leaf must hold >= 4 samples: with 8 points depth <= 1.
	if tree.Depth() > 1 {
		t.Fatalf("depth %d with MinSamplesLeaf=4 on 8 points", tree.Depth())
	}
}

func TestTreePredictionsWithinTargetRange(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 20 + rng.Intn(40)
		d := &Dataset{}
		minY, maxY := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			d.X = append(d.X, []float64{rng.Float64(), rng.Float64()})
			y := rng.Float64()*100 - 50
			d.Y = append(d.Y, y)
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
		tree := NewTreeRegressor()
		if err := tree.Fit(d); err != nil {
			return false
		}
		for i := 0; i < 30; i++ {
			v, err := tree.Predict([]float64{rng.Float64() * 2, rng.Float64() * 2})
			if err != nil || v < minY-1e-9 || v > maxY+1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeDecisionPath(t *testing.T) {
	d := xorDataset()
	tree := NewTreeRegressor()
	if err := tree.Fit(d); err != nil {
		t.Fatal(err)
	}
	path, err := tree.DecisionPath([]float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(path) == 0 {
		t.Fatal("empty decision path on a split tree")
	}
	for _, step := range path {
		if step.Feature < 0 || step.Feature > 1 {
			t.Errorf("path step uses feature %d", step.Feature)
		}
	}
	// Replaying the path decisions must be consistent with the input.
	x := []float64{0, 1}
	for _, step := range path {
		if (x[step.Feature] <= step.Threshold) != step.WentLeft {
			t.Error("recorded branch contradicts the comparison")
		}
	}
}

func TestTreeFeatureImportances(t *testing.T) {
	// Only feature 1 carries signal; importances must concentrate there.
	d := &Dataset{
		X: [][]float64{{5, 0}, {5, 1}, {5, 2}, {5, 3}, {5, 4}, {5, 5}},
		Y: []float64{0, 0, 0, 10, 10, 10},
	}
	tree := NewTreeRegressor()
	if err := tree.Fit(d); err != nil {
		t.Fatal(err)
	}
	imp, err := tree.FeatureImportances()
	if err != nil {
		t.Fatal(err)
	}
	if imp[0] != 0 {
		t.Errorf("constant feature importance %v", imp[0])
	}
	if math.Abs(imp[1]-1) > 1e-9 {
		t.Errorf("informative feature importance %v, want 1", imp[1])
	}
}

func TestTreeErrors(t *testing.T) {
	tree := NewTreeRegressor()
	if _, err := tree.Predict([]float64{1}); err == nil {
		t.Error("unfitted Predict succeeded")
	}
	if _, err := tree.DecisionPath([]float64{1}); err == nil {
		t.Error("unfitted DecisionPath succeeded")
	}
	if _, err := tree.FeatureImportances(); err == nil {
		t.Error("unfitted FeatureImportances succeeded")
	}
	if err := tree.Fit(&Dataset{}); err == nil {
		t.Error("empty dataset accepted")
	}
	if err := tree.Fit(xorDataset()); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Predict([]float64{1, 2, 3}); err == nil {
		t.Error("wrong-width vector accepted")
	}
}

func TestTreeExport(t *testing.T) {
	tree := NewTreeRegressor()
	if err := tree.Fit(xorDataset()); err != nil {
		t.Fatal(err)
	}
	text := tree.Export([]string{"alpha", "beta"})
	if !strings.Contains(text, "alpha") && !strings.Contains(text, "beta") {
		t.Errorf("export mentions no feature names:\n%s", text)
	}
	if !strings.Contains(text, "leaf") {
		t.Error("export has no leaves")
	}
	if got := (&TreeRegressor{}).Export(nil); !strings.Contains(got, "unfitted") {
		t.Errorf("unfitted export = %q", got)
	}
}

func TestTreePredictAll(t *testing.T) {
	d := xorDataset()
	tree := NewTreeRegressor()
	if err := tree.Fit(d); err != nil {
		t.Fatal(err)
	}
	preds, err := tree.PredictAll(d.X)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != len(d.X) {
		t.Fatalf("got %d predictions", len(preds))
	}
}

func TestMeanMSE(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	mean, mse := meanMSE(y, []int{0, 1, 2, 3})
	if mean != 2.5 {
		t.Errorf("mean = %v", mean)
	}
	if math.Abs(mse-1.25) > 1e-12 {
		t.Errorf("mse = %v", mse)
	}
	if m, v := meanMSE(y, nil); m != 0 || v != 0 {
		t.Errorf("empty meanMSE = %v, %v", m, v)
	}
}
