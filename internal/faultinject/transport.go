// Network-level chaos: a deterministic http.RoundTripper that fires the
// same seeded fault plans the process-local injector uses, but at the
// socket boundary — added latency, connection resets, black-holes, 5xx
// bursts, and truncated response bodies.
//
// Sites are named "net.<host:port>" (NetSite) and the call index is the
// per-site request ordinal, so a plan like
//
//	blackhole|net.127.0.0.1:18081|200+
//
// black-holes every request to that replica from its 200th onward — the
// canonical "replica goes dark mid-run" scenario the chaos-serve CI job
// drives. Matching is deterministic in (plan, per-site arrival order);
// with a single-threaded client the same plan reproduces byte-identically.
package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// NetSite returns the Transport site string for a target URL or host:port
// ("http://127.0.0.1:8080" and "127.0.0.1:8080" both map to
// "net.127.0.0.1:8080").
func NetSite(target string) string {
	if u, err := url.Parse(target); err == nil && u.Host != "" {
		return "net." + u.Host
	}
	return "net." + strings.TrimSuffix(strings.TrimPrefix(target, "http://"), "/")
}

// Transport is an http.RoundTripper that applies a fault Plan to outbound
// requests. Each request resolves against the plan at site
// NetSite(req.URL.Host) with a per-site ordinal index. Unmatched requests
// forward to Base untouched.
//
// Kind semantics at the network layer:
//   - KindDelay: sleep Fault.Delay (context-aware), then continue matching.
//   - KindError: fail without touching the wire — a connection reset.
//   - KindBlackhole: block until the request context is done, then return
//     its error — a silently dropped route.
//   - KindHTTPError: synthesize a Fault.Code (default 500) JSON response.
//   - KindTruncateBody: forward, then cut the response body after
//     Fault.KeepBytes bytes so the reader hits io.ErrUnexpectedEOF.
//
// Safe for concurrent use.
type Transport struct {
	base http.RoundTripper
	plan *matcher

	mu     sync.Mutex
	counts map[string]int
}

// NewTransport wraps base (nil means http.DefaultTransport) with plan.
func NewTransport(base http.RoundTripper, plan Plan) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{
		base:   base,
		plan:   newMatcher(plan),
		counts: make(map[string]int),
	}
}

// Requests reports how many requests the transport has seen for site,
// faulted or not. Chaos tests use it to assert breaker behavior ("the
// black-holed replica stopped receiving attempts").
func (t *Transport) Requests(site string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts[site]
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	site := "net." + req.URL.Host
	t.mu.Lock()
	index := t.counts[site]
	t.counts[site] = index + 1
	t.mu.Unlock()

	terminal, delays := t.plan.match(site, index)
	for _, d := range delays {
		select {
		case <-time.After(d):
		case <-req.Context().Done():
			return nil, fmt.Errorf("faultinject: delayed request to %s[%d] cancelled: %w", site, index, req.Context().Err())
		}
	}
	if terminal == nil {
		return t.base.RoundTrip(req)
	}
	switch terminal.Kind {
	case KindError:
		return nil, &Error{Site: site, Index: index}
	case KindPanic:
		panic(&Panic{Site: site, Index: index})
	case KindBlackhole:
		<-req.Context().Done()
		return nil, fmt.Errorf("faultinject: black-holed request to %s[%d]: %w", site, index, req.Context().Err())
	case KindHTTPError:
		code := terminal.Code
		if code == 0 {
			code = http.StatusInternalServerError
		}
		body := fmt.Sprintf("{\"error\":\"faultinject: injected %d at %s[%d]\"}\n", code, site, index)
		resp := &http.Response{
			Status:        fmt.Sprintf("%d %s", code, http.StatusText(code)),
			StatusCode:    code,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(bytes.NewReader([]byte(body))),
			ContentLength: int64(len(body)),
			Request:       req,
		}
		return resp, nil
	case KindTruncateBody:
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &truncatedBody{rc: resp.Body, remain: terminal.KeepBytes, site: site, index: index}
		return resp, nil
	}
	return t.base.RoundTrip(req)
}

// truncatedBody passes through the first remain bytes and then fails with
// io.ErrUnexpectedEOF, like a connection cut mid-body.
type truncatedBody struct {
	rc     io.ReadCloser
	remain int
	site   string
	index  int
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, fmt.Errorf("faultinject: response body truncated at %s[%d]: %w", b.site, b.index, io.ErrUnexpectedEOF)
	}
	if len(p) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.rc.Read(p)
	b.remain -= n
	if err == io.EOF {
		// The upstream body really ended inside the keep window; the
		// truncation never bit. Report the clean EOF.
		return n, err
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }

// ParsePlan parses a comma-separated list of fault specs into a Plan, the
// wire format of mapc-router's -chaos flag. Each spec is
//
//	kind|site|index[|opt=val[;opt=val...]]
//
// kind: error, blackhole, http-error, truncate-body, delay, panic.
// site:  e.g. net.127.0.0.1:18081 (| is the separator because sites
// contain colons). index: a number, "*" (every call), or "N+" (call N
// onward). opts: delay=<duration>, code=<status>, keep=<bytes>, once.
func ParsePlan(specs string) (Plan, error) {
	var plan Plan
	for _, spec := range strings.Split(specs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		f, err := parseFault(spec)
		if err != nil {
			return Plan{}, err
		}
		plan.Faults = append(plan.Faults, f)
	}
	return plan, nil
}

func parseFault(spec string) (Fault, error) {
	parts := strings.Split(spec, "|")
	if len(parts) < 3 || len(parts) > 4 {
		return Fault{}, fmt.Errorf("faultinject: spec %q: want kind|site|index[|opts]", spec)
	}
	var f Fault
	switch parts[0] {
	case "error":
		f.Kind = KindError
	case "panic":
		f.Kind = KindPanic
	case "delay":
		f.Kind = KindDelay
	case "torn-write":
		f.Kind = KindTornWrite
	case "blackhole":
		f.Kind = KindBlackhole
	case "http-error":
		f.Kind = KindHTTPError
	case "truncate-body":
		f.Kind = KindTruncateBody
	default:
		return Fault{}, fmt.Errorf("faultinject: spec %q: unknown kind %q", spec, parts[0])
	}
	f.Site = parts[1]
	if f.Site == "" {
		return Fault{}, fmt.Errorf("faultinject: spec %q: empty site", spec)
	}
	idx := parts[2]
	switch {
	case idx == "*":
		f.Index = AnyIndex
	case strings.HasSuffix(idx, "+"):
		from, err := strconv.Atoi(strings.TrimSuffix(idx, "+"))
		if err != nil || from < 0 {
			return Fault{}, fmt.Errorf("faultinject: spec %q: bad index %q", spec, idx)
		}
		f.Index = AnyIndex
		f.From = from
	default:
		n, err := strconv.Atoi(idx)
		if err != nil || n < 0 {
			return Fault{}, fmt.Errorf("faultinject: spec %q: bad index %q", spec, idx)
		}
		f.Index = n
	}
	if len(parts) == 4 {
		for _, opt := range strings.Split(parts[3], ";") {
			opt = strings.TrimSpace(opt)
			if opt == "" {
				continue
			}
			key, val, _ := strings.Cut(opt, "=")
			switch key {
			case "delay":
				d, err := time.ParseDuration(val)
				if err != nil {
					return Fault{}, fmt.Errorf("faultinject: spec %q: bad delay %q: %v", spec, val, err)
				}
				f.Delay = d
			case "code":
				c, err := strconv.Atoi(val)
				if err != nil || c < 100 || c > 599 {
					return Fault{}, fmt.Errorf("faultinject: spec %q: bad code %q", spec, val)
				}
				f.Code = c
			case "keep":
				k, err := strconv.Atoi(val)
				if err != nil || k < 0 {
					return Fault{}, fmt.Errorf("faultinject: spec %q: bad keep %q", spec, val)
				}
				f.KeepBytes = k
			case "once":
				f.Once = true
			default:
				return Fault{}, fmt.Errorf("faultinject: spec %q: unknown option %q", spec, key)
			}
		}
	}
	return f, nil
}

// RandomNetworkPlan derives a deterministic mixed network-fault plan for
// site: roughly one in eight of the first n request ordinals gets a fault,
// cycling through added latency, connection resets, 5xx answers, and
// truncated bodies. The same (seed, site, n) always yields the same plan,
// so a chaos failure reproduces from its seed.
func RandomNetworkPlan(seed uint64, site string, n int) Plan {
	if n <= 0 {
		return Plan{}
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	count := n / 8
	if count < 1 {
		count = 1
	}
	picked := make(map[int]bool, count)
	for len(picked) < count && len(picked) < n {
		picked[rng.Intn(n)] = true
	}
	indices := make([]int, 0, len(picked))
	for idx := range picked {
		indices = append(indices, idx)
	}
	sort.Ints(indices)
	var plan Plan
	for i, idx := range indices {
		f := Fault{Site: site, Index: idx, Once: true}
		switch i % 4 {
		case 0:
			f.Kind = KindDelay
			f.Delay = time.Duration(1+rng.Intn(10)) * time.Millisecond
		case 1:
			f.Kind = KindError
		case 2:
			f.Kind = KindHTTPError
			f.Code = []int{500, 502, 500}[rng.Intn(3)]
		case 3:
			f.Kind = KindTruncateBody
			f.KeepBytes = rng.Intn(64)
		}
		plan.Faults = append(plan.Faults, f)
	}
	return plan
}
