package dataset

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkGenerateCorpus measures corpus-generation throughput
// (points/sec) at Workers=1 (the legacy serial path) versus
// Workers=NumCPU. Each iteration builds a fresh generator so the memoized
// measurement cache is cold, matching a real `mapc-datagen` invocation.
//
// On a multi-core runner the NumCPU variant should report >= 2x the
// points/sec of the serial one; on a single-core machine the two are
// equivalent by construction (the corpus is bit-identical either way).
//
// Run with:
//
//	go test ./internal/dataset -bench BenchmarkGenerateCorpus -benchtime 1x
func BenchmarkGenerateCorpus(b *testing.B) {
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Workers = workers
			benchGenerate(b, cfg)
		})
	}
}

// BenchmarkGenerateCorpusKSweep measures how generation throughput scales
// with the bag size on the reduced 3-benchmark registry (the full Table-II
// suite at k=4 enumerates C(9,4) combinations — too slow for -benchtime 1x
// CI smoke runs). Larger k means fewer but costlier bags: each shared
// simulation co-schedules k workloads.
func BenchmarkGenerateCorpusKSweep(b *testing.B) {
	for _, k := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			cfg := smallConfig()
			cfg.Workers = runtime.NumCPU()
			cfg.K = k
			benchGenerate(b, cfg)
		})
	}
}

func benchGenerate(b *testing.B, cfg Config) {
	var points int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A real mapc-datagen invocation starts with a clean heap;
		// drop the previous iteration's dead generator (including its
		// simulation memo, hundreds of MiB) outside the timed window
		// so its collection is not charged to this iteration.
		b.StopTimer()
		runtime.GC()
		b.StartTimer()
		gen, err := NewGenerator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		c, err := gen.Generate()
		if err != nil {
			b.Fatal(err)
		}
		points += len(c.Points)
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(points)/sec, "points/sec")
	}
}
