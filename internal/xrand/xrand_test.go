package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(123)
	b := New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestZeroSeedRemapped(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%100 + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw) % 64
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	vals := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	New(9).Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	after := 0
	for _, v := range vals {
		after += v
	}
	if sum != after {
		t.Fatalf("shuffle changed multiset: sum %d -> %d", sum, after)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(7)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if mean < -0.02 || mean > 0.02 {
		t.Errorf("mean %v too far from 0", mean)
	}
	if variance < 0.95 || variance > 1.05 {
		t.Errorf("variance %v too far from 1", variance)
	}
}
