package vision

import (
	"fmt"
	"math"
	"sort"

	"mapc/internal/trace"
)

// DefaultImageSize is the side length of synthetic benchmark images. The
// paper's suite operated on camera frames; 96x96 keeps the real algorithms
// fast enough for exhaustive testing while preserving their structure.
const DefaultImageSize = 96

// sampleCap bounds how many batch images are actually executed; the
// remaining images are accounted for by linear extrapolation of the sampled
// counts (the standard sampled-simulation methodology, cf. SimPoint). Batch
// processing is embarrassingly parallel across images, so per-image costs
// are statistically identical and linear scaling is exact in expectation.
const sampleCap = 3

// Benchmark is one Table-II workload. Implementations perform the real
// computation on the provided images and report instrumentation through rec.
type Benchmark interface {
	// Name returns the canonical lower-case benchmark identifier.
	Name() string
	// Scene returns the synthetic scene kind the benchmark expects.
	Scene() SceneKind
	// run executes the benchmark on the images under instrumentation and
	// returns benchmark-specific summary statistics.
	run(images []*Image, rec *trace.Recorder) (map[string]float64, error)
}

// Result bundles the outcome of an instrumented benchmark run.
type Result struct {
	// Workload is the instrumented description consumed by the simulators.
	Workload *trace.Workload
	// Summary holds benchmark-specific functional outputs
	// (e.g. "keypoints", "matches", "support_vectors").
	Summary map[string]float64
}

// Run executes benchmark b on a synthetic batch of batchSize images derived
// from seed, returning the extrapolated workload and functional summary.
func Run(b Benchmark, batchSize int, seed uint64) (*Result, error) {
	if batchSize <= 0 {
		return nil, fmt.Errorf("vision: batch size %d must be positive", batchSize)
	}
	sample := batchSize
	if sample > sampleCap {
		sample = sampleCap
	}
	images := make([]*Image, sample)
	for i := range images {
		images[i] = SynthesizeImage(b.Scene(), DefaultImageSize, DefaultImageSize,
			seed+uint64(i)*0x9E37_79B9)
	}

	rec := trace.NewRecorder(b.Name(), batchSize)
	summary, err := b.run(images, rec)
	if err != nil {
		return nil, fmt.Errorf("vision: %s: %w", b.Name(), err)
	}
	w, err := rec.Workload()
	if err != nil {
		return nil, fmt.Errorf("vision: %s instrumentation: %w", b.Name(), err)
	}
	if sample < batchSize {
		scaleWorkload(w, float64(batchSize)/float64(sample))
	}
	w.TransferBytes = int64(batchSize) * int64(DefaultImageSize*DefaultImageSize) * 8
	return &Result{Workload: w, Summary: summary}, nil
}

// scaleWorkload extrapolates a sampled run to the full batch: instruction
// counts and exposed parallelism grow linearly with the number of
// independent images. Footprints do NOT scale: a phase's footprint is its
// instantaneous working set (one image's data plus shared tables), which is
// what determines cache behaviour — extra batch images are processed
// through the same working set, not resident simultaneously. Patterns,
// reuse, vector widths and batch-invariant phases are untouched.
func scaleWorkload(w *trace.Workload, factor float64) {
	for i := range w.Phases {
		p := &w.Phases[i]
		if p.BatchInvariant {
			continue
		}
		p.Counts = p.Counts.Scale(factor)
		p.Parallelism = int(float64(p.Parallelism) * factor)
		if p.Parallelism < 1 {
			p.Parallelism = 1
		}
		// Each recorded phase ran once per sampled image; the full batch
		// re-launches it once per extrapolated image.
		p.Launches = p.LaunchCount() * int(math.Ceil(factor))
	}
}

// All returns the nine benchmarks in the paper's canonical plotting order
// (Figures 1-4): FAST, HoG, KNN, ObjRec, ORB, SIFT, SURF, SVM, FaceDet.
func All() []Benchmark {
	return []Benchmark{
		NewFAST(), NewHoG(), NewKNN(), NewObjRec(), NewORB(),
		NewSIFT(), NewSURF(), NewSVM(), NewFaceDet(),
	}
}

// Names returns the canonical benchmark names in plotting order.
func Names() []string {
	bs := All()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name()
	}
	return names
}

// ByName returns the benchmark with the given canonical name.
func ByName(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name() == name {
			return b, nil
		}
	}
	known := Names()
	sort.Strings(known)
	return nil, fmt.Errorf("vision: unknown benchmark %q (known: %v)", name, known)
}
