package vision

import (
	"sort"

	"mapc/internal/trace"
	"mapc/internal/xrand"
)

// KNN classifies image feature descriptors against a labelled reference
// gallery by brute-force k-nearest-neighbour search (after Garcia et al.,
// the GPU-friendly formulation): a dense distance matrix between query and
// reference descriptors followed by a partial selection of the k smallest
// entries per query.
type KNN struct {
	K          int // neighbours consulted per query
	References int // gallery size
	Classes    int // number of labels in the gallery
	hog        *HoG
}

// NewKNN returns a 5-NN classifier against a 192-descriptor gallery.
func NewKNN() *KNN {
	return &KNN{K: 5, References: 192, Classes: 8, hog: NewHoG()}
}

// Name implements Benchmark.
func (k *KNN) Name() string { return "knn" }

// Scene implements Benchmark.
func (k *KNN) Scene() SceneKind { return SceneObjects }

func (k *KNN) run(images []*Image, rec *trace.Recorder) (map[string]float64, error) {
	gallery, labels := k.buildGallery()

	var queries, votesTotal int
	for _, im := range images {
		// Phase: descriptor extraction (re-uses the instrumented HoG).
		desc := k.hog.Describe(im, rec)

		// Phase: brute-force distance matrix + k-selection. Random
		// access across the whole gallery — a large, poorly cached
		// footprint with vectorizable FP inner loops.
		dim := 0
		if len(desc) > 0 {
			dim = len(desc[0])
		}
		footprint := int64((len(gallery)*dim + len(desc)*dim) * 8)
		rec.BeginPhase("knn-search", footprint, trace.PhaseOpts{
			Pattern:     trace.Random,
			Reuse:       0.2,
			Parallelism: maxInt(len(desc)*len(gallery), 1),
			VectorWidth: simdWidth,
		})
		for _, q := range desc {
			label := k.classify(q, gallery, labels, rec)
			votesTotal += label
			queries++
		}
		rec.EndPhase()
	}
	return map[string]float64{
		"queries":   float64(queries) / float64(len(images)),
		"voteCheck": float64(votesTotal),
	}, nil
}

// classify returns the majority label among the k nearest gallery entries.
func (k *KNN) classify(q []float64, gallery [][]float64, labels []int, rec *trace.Recorder) int {
	type nd struct {
		d     float64
		label int
	}
	dists := make([]nd, len(gallery))
	for i, g := range gallery {
		dists[i] = nd{d: Dist2(q, g, rec), label: labels[i]}
	}
	// Partial selection of the k smallest via full sort on the (small)
	// gallery; selection cost is counted explicitly below.
	sort.Slice(dists, func(i, j int) bool { return dists[i].d < dists[j].d })
	n := uint64(len(dists))
	rec.FP(n * 8) // comparison-driven sort cost, ~n log n
	rec.Control(n * 8)
	rec.Mem(n * 4)
	rec.Stack(n) // sort recursion frames

	votes := make(map[int]int)
	for i := 0; i < k.K && i < len(dists); i++ {
		votes[dists[i].label]++
	}
	best, bestN := 0, -1
	for label := 0; label < k.Classes; label++ {
		if votes[label] > bestN {
			best, bestN = label, votes[label]
		}
	}
	rec.ALU(uint64(k.K + k.Classes))
	rec.Control(uint64(k.K + k.Classes))
	return best
}

// buildGallery synthesizes the deterministic labelled reference set. The
// gallery plays the role of the training corpus that the original benchmark
// loaded from disk.
func (k *KNN) buildGallery() ([][]float64, []int) {
	dim := k.hog.Block * k.hog.Block * k.hog.Bins
	rng := xrand.New(0xC1A55_1F1E5)
	gallery := make([][]float64, k.References)
	labels := make([]int, k.References)
	for i := range gallery {
		label := i % k.Classes
		v := make([]float64, dim)
		for j := range v {
			// Class-dependent mean plus noise so neighbours of the
			// same class cluster.
			v[j] = float64((label*j)%7)*0.15 + rng.NormFloat64()*0.3
		}
		gallery[i] = v
		labels[i] = label
	}
	return gallery, labels
}
