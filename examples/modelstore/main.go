// Modelstore: the production workflow — train the predictor once, persist
// it to disk, and serve predictions from the loaded model without
// regenerating the corpus. This is how a scheduler would deploy the paper's
// predictor: data collection is expensive and happens offline; admission
// decisions load the model and featurize only the incoming bag.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mapc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("modelstore: ")

	dir, err := os.MkdirTemp("", "mapc-model")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "predictor.json")

	// Offline: collect the corpus and train.
	fmt.Println("offline phase: generating corpus and training...")
	corpus, err := mapc.GenerateCorpus()
	if err != nil {
		log.Fatal(err)
	}
	trained, err := mapc.Train(corpus, mapc.SchemeFull)
	if err != nil {
		log.Fatal(err)
	}
	if err := trained.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved model: %s (%d bytes, tree depth %d)\n",
		filepath.Base(path), info.Size(), trained.Tree().Depth())

	// Online: load the model and serve predictions. Featurization still
	// needs the measurement generator (isolated runs + CPU co-run), but
	// never the expensive GPU bag execution or corpus regeneration.
	fmt.Println("\nonline phase: loading model and serving predictions...")
	served, err := mapc.LoadPredictorFile(path)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := mapc.NewGenerator(mapc.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	requests := [][2]mapc.Member{
		{{Benchmark: "hog", Batch: 40}, {Benchmark: "surf", Batch: 40}},
		{{Benchmark: "fast", Batch: 160}, {Benchmark: "knn", Batch: 20}},
		{{Benchmark: "svm", Batch: 80}, {Benchmark: "svm", Batch: 80}},
	}
	for _, req := range requests {
		x, fairness, err := gen.FeaturesFor(req[0], req[1])
		if err != nil {
			log.Fatal(err)
		}
		pred, err := served.PredictRaw(x)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12v + %-12v fairness %.3f -> predicted bag time %8.3f ms\n",
			req[0], req[1], fairness, pred*1e3)
	}

	// Consistency check: the loaded model must agree with the in-memory
	// one on every training point.
	var maxDiff float64
	for i := range corpus.Points {
		a, err := trained.PredictPoint(&corpus.Points[i])
		if err != nil {
			log.Fatal(err)
		}
		b, err := served.PredictPoint(&corpus.Points[i])
		if err != nil {
			log.Fatal(err)
		}
		if d := a - b; d > maxDiff || -d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("\nround-trip check: max prediction difference %.3g (must be 0)\n", maxDiff)
}
