// Command mapc-datagen generates the 91-run training corpus of Section V-B
// and writes it as CSV (features + target) to stdout or a file.
//
// Usage:
//
//	mapc-datagen                 # CSV to stdout
//	mapc-datagen -o corpus.csv   # CSV to a file
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"mapc/internal/dataset"
	"mapc/internal/profiling"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	workers := flag.Int("workers", 0, "measurement worker goroutines (0 = NumCPU, 1 = serial); output is identical for every value")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of corpus generation to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a post-GC heap profile to this file on exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "mapc-datagen: profiling:", err)
		}
	}()

	cfg := dataset.DefaultConfig()
	cfg.Workers = *workers
	gen, err := dataset.NewGenerator(cfg)
	if err != nil {
		fatal(err)
	}
	corpus, err := gen.Generate()
	if err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if err := writeCSV(w, corpus); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mapc-datagen: wrote %d data points (%d features + target)\n",
		len(corpus.Points), len(corpus.FeatureNames))
}

func writeCSV(w io.Writer, corpus *dataset.Corpus) error {
	cw := csv.NewWriter(w)
	header := []string{"bench_a", "batch_a", "bench_b", "batch_b", "homogeneous"}
	header = append(header, corpus.FeatureNames...)
	header = append(header, "gpu_bag_time_sec")
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range corpus.Points {
		p := &corpus.Points[i]
		row := []string{
			p.Members[0].Benchmark, strconv.Itoa(p.Members[0].Batch),
			p.Members[1].Benchmark, strconv.Itoa(p.Members[1].Batch),
			strconv.FormatBool(p.Homogeneous),
		}
		for _, v := range p.X {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		row = append(row, strconv.FormatFloat(p.Y, 'g', -1, 64))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mapc-datagen:", err)
	os.Exit(1)
}
