package sched

import (
	"sync"
	"testing"

	"mapc/internal/core"
	"mapc/internal/dataset"
)

var (
	setupOnce sync.Once
	schedCfg  dataset.Config
	predictor *core.Predictor
	setupErr  error
)

// setup trains a predictor on a reduced corpus once for the package.
func setup(t *testing.T) (dataset.Config, *core.Predictor) {
	t.Helper()
	setupOnce.Do(func() {
		schedCfg = dataset.DefaultConfig()
		schedCfg.BatchSizes = []int{20, 40}
		schedCfg.MixedPairs = 0
		gen, err := dataset.NewGenerator(schedCfg)
		if err != nil {
			setupErr = err
			return
		}
		corpus, err := gen.Generate()
		if err != nil {
			setupErr = err
			return
		}
		predictor, setupErr = core.Train(corpus, core.SchemeFull, core.DefaultTreeParams())
	})
	if setupErr != nil {
		t.Fatal(setupErr)
	}
	return schedCfg, predictor
}

func testQueue() []Job {
	return []Job{
		{ID: 0, Member: dataset.Member{Benchmark: "sift", Batch: 40}},
		{ID: 1, Member: dataset.Member{Benchmark: "fast", Batch: 20}},
		{ID: 2, Member: dataset.Member{Benchmark: "knn", Batch: 20}},
		{ID: 3, Member: dataset.Member{Benchmark: "hog", Batch: 40}},
		{ID: 4, Member: dataset.Member{Benchmark: "surf", Batch: 20}},
		{ID: 5, Member: dataset.Member{Benchmark: "facedet", Batch: 40}},
	}
}

func TestSchedulerValidation(t *testing.T) {
	cfg, p := setup(t)
	s, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(nil, testQueue()); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := s.Run(SerialFIFO{}, nil); err == nil {
		t.Error("empty queue accepted")
	}
}

func TestSerialFIFO(t *testing.T) {
	cfg, p := setup(t)
	s, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	queue := testQueue()
	sch, err := s.Run(SerialFIFO{}, queue)
	if err != nil {
		t.Fatal(err)
	}
	if sch.Batches != len(queue) {
		t.Fatalf("serial used %d batches for %d jobs", sch.Batches, len(queue))
	}
	if len(sch.Outcomes) != len(queue) {
		t.Fatalf("%d outcomes", len(sch.Outcomes))
	}
	// FIFO order: completion order matches arrival order.
	for i := 1; i < len(sch.Outcomes); i++ {
		if sch.Outcomes[i].Job.ID != queue[i].ID {
			t.Errorf("outcome %d is job %d", i, sch.Outcomes[i].Job.ID)
		}
		if sch.Outcomes[i].Start < sch.Outcomes[i-1].Finish-1e-12 {
			t.Errorf("serial jobs overlap at %d", i)
		}
		if sch.Outcomes[i].CoRan != nil {
			t.Errorf("serial job %d has a co-runner", i)
		}
	}
	if sch.Makespan <= 0 || sch.MeanTurnaround <= 0 {
		t.Fatalf("metrics %+v", sch)
	}
	if sch.MeanTurnaround > sch.Makespan {
		t.Error("mean turnaround exceeds makespan")
	}
}

func TestPairFIFOUsesFewerBatches(t *testing.T) {
	cfg, p := setup(t)
	s, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := s.Run(PairFIFO{}, testQueue())
	if err != nil {
		t.Fatal(err)
	}
	if sch.Batches != 3 {
		t.Fatalf("pair-fifo used %d batches for 6 jobs", sch.Batches)
	}
	paired := 0
	for _, o := range sch.Outcomes {
		if o.CoRan != nil {
			paired++
		}
	}
	if paired != 6 {
		t.Errorf("%d outcomes have co-runners", paired)
	}
}

func TestPredictedPairingBeatsSerial(t *testing.T) {
	cfg, p := setup(t)
	s, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	queue := testQueue()
	serial, err := s.Run(SerialFIFO{}, queue)
	if err != nil {
		t.Fatal(err)
	}
	predicted, err := s.Run(PredictedPairing{}, queue)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := s.Run(OraclePairing{}, queue)
	if err != nil {
		t.Fatal(err)
	}
	// Spatial multiplexing must pay: prediction-guided pairing drains
	// the queue faster than serial execution, and the oracle is at
	// least as good as serial by construction.
	if predicted.Makespan >= serial.Makespan {
		t.Errorf("predicted pairing makespan %v not better than serial %v",
			predicted.Makespan, serial.Makespan)
	}
	if oracle.Makespan > serial.Makespan*(1+1e-9) {
		t.Errorf("oracle makespan %v worse than serial %v",
			oracle.Makespan, serial.Makespan)
	}
	// The prediction should recover most of the oracle's benefit.
	if gapO, gapP := serial.Makespan-oracle.Makespan, serial.Makespan-predicted.Makespan; gapP < gapO*0.5 {
		t.Errorf("prediction recovers only %v of the oracle's %v saving", gapP, gapO)
	}
}

func TestPredictedPairingNeedsPredictor(t *testing.T) {
	cfg, _ := setup(t)
	s, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(PredictedPairing{}, testQueue()); err == nil {
		t.Fatal("predictor-less predicted pairing accepted")
	}
	// The oracle and FIFO policies work without a predictor.
	if _, err := s.Run(OraclePairing{}, testQueue()); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	cfg, p := setup(t)
	s, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Run(PredictedPairing{}, testQueue())
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run(PredictedPairing{}, testQueue())
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Batches != b.Batches {
		t.Fatal("scheduler not deterministic")
	}
}
