// Package dataset creates the training corpus of Section V-B: it runs
// every Table-II benchmark at five batch sizes through the instrumented
// vision suite, measures isolated CPU/GPU executions and co-scheduled
// 2-application bags on the simulators, and assembles the 91-run corpus of
// homogeneous and heterogeneous data points with Table-IV feature vectors.
package dataset

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"mapc/internal/cpusim"
	"mapc/internal/faultinject"
	"mapc/internal/features"
	"mapc/internal/gpusim"
	"mapc/internal/mica"
	"mapc/internal/ml"
	"mapc/internal/parallel"
	"mapc/internal/perfmon"
	"mapc/internal/simcache"
	"mapc/internal/trace"
	"mapc/internal/vision"
)

// DefaultSimCacheMB is the default byte budget (in MiB) of the cross-bag
// simulation memo. Sized so the full 91-point paper corpus fits with room
// to spare: generating it resides ~376 MiB of entries — dominated by
// gpusim's materialized reference streams and cpusim's LLC-bound lists
// (both ~8 bytes per sampled reference, per member per slot) plus the
// whole-run isolated results. At 512 MiB the full default corpus
// generates with zero evictions; a tighter budget only costs
// recomputation time, never accuracy (outputs are bit-identical at every
// budget).
const DefaultSimCacheMB = 512

// DefaultBatchSizes are the five input sizes of Section V-B: the standard
// 20-image batch and its doublings.
var DefaultBatchSizes = []int{20, 40, 80, 160, 320}

// DefaultThreads is the per-application CPU thread count (the paper picks
// each benchmark's best configuration; on the Table-III server the OpenCV
// kernels saturate around 16 threads).
const DefaultThreads = 16

// Member identifies one application instance inside a bag.
type Member struct {
	Benchmark string
	Batch     int
}

func (m Member) String() string { return fmt.Sprintf("%s/%d", m.Benchmark, m.Batch) }

// Point is one data point: a 2-application bag with its feature vector and
// measured GPU bag execution time.
type Point struct {
	// Members lists the bag's applications.
	Members [2]Member
	// Homogeneous records whether both members are identical.
	Homogeneous bool
	// X is the Table-IV feature vector (see features.Names(2)).
	X []float64
	// Y is the target: the bag's GPU execution time (makespan) under MPS,
	// in seconds.
	Y float64
	// Fairness is the bag's CPU fairness metric (also inside X).
	Fairness float64
	// CPUTimes and GPUTimes are the members' isolated execution times.
	CPUTimes [2]float64
	GPUTimes [2]float64
}

// Corpus is the complete generated dataset.
type Corpus struct {
	Points       []Point
	FeatureNames []string
	// CPUTimeDivisor is the Section V-C normalization constant applied to
	// the time columns.
	CPUTimeDivisor float64
}

// Config controls corpus generation.
type Config struct {
	CPU        cpusim.Config
	GPU        gpusim.Config
	BatchSizes []int
	Threads    int
	// Seed drives image synthesis; fixed by default for reproducibility.
	Seed uint64
	// HeteroBatches lists extra mixed-batch heterogeneous combinations;
	// see DefaultConfig for the shipped set.
	MixedPairs int
	// CanonicalOrder, when true, sorts bag members heavier-first (by
	// isolated CPU time) before building the replicated feature vector.
	// The paper replicates in arbitrary order; canonical ordering is an
	// extension studied in the ablation benches.
	CanonicalOrder bool
	// Workers bounds the measurement engine's goroutine pool: how many
	// simulator runs Generate executes concurrently. 0 (the zero value)
	// selects runtime.NumCPU(); 1 is the exact legacy serial path.
	// Corpus contents and ordering are bit-for-bit identical for every
	// worker count — results are written by bag index and every
	// simulator RNG is seeded per member, never shared across
	// goroutines.
	Workers int
	// Benchmarks optionally restricts generation to a subset of the
	// Table-II suite (canonical vision benchmark names). Nil or empty
	// means all nine. Primarily for tests and partial regenerations.
	Benchmarks []string
	// SimCacheMB bounds the cross-bag simulation memo (internal/simcache)
	// in MiB: memoized pure simulation prefixes — per-app private cache
	// replays, materialized GPU reference streams, whole isolated runs —
	// shared across every bag the generator measures. 0 disables the memo
	// (the exact cold path); negative values are rejected by NewGenerator.
	// Like Workers, the value never changes outputs, only speed: corpora
	// are bit-for-bit identical at every budget, so it is excluded from
	// the journal's config fingerprint.
	SimCacheMB int
}

// EffectiveWorkers resolves the configured worker count: values <= 0 mean
// runtime.NumCPU().
func (c Config) EffectiveWorkers() int { return parallel.Resolve(c.Workers) }

// BenchmarkNames returns the effective benchmark list: Config.Benchmarks if
// set, otherwise the full Table-II suite, always as a fresh slice.
func (c Config) BenchmarkNames() []string {
	if len(c.Benchmarks) == 0 {
		return vision.Names()
	}
	return append([]string(nil), c.Benchmarks...)
}

// DefaultConfig reproduces the paper's 91-run corpus: 45 homogeneous points
// (9 benchmarks x 5 batches), 36 heterogeneous same-batch pairs and 10
// heterogeneous mixed-batch pairs.
func DefaultConfig() Config {
	return Config{
		CPU:            cpusim.DefaultConfig(),
		GPU:            gpusim.DefaultConfig(),
		BatchSizes:     DefaultBatchSizes,
		Threads:        DefaultThreads,
		Seed:           42,
		MixedPairs:     10,
		CanonicalOrder: true,
		Workers:        runtime.NumCPU(),
		SimCacheMB:     DefaultSimCacheMB,
	}
}

// measurement caches one (benchmark, batch) instrumented run and its
// isolated simulator results.
type measurement struct {
	workload *trace.Workload
	mix      mica.Mix
	cpu      cpusim.Result
	gpu      gpusim.Result
}

// measureEntry is one singleflight slot of the memoized measurement cache:
// the sync.Once guarantees the member's instrumented run and isolated
// simulations execute exactly once even when concurrent bags share the
// member.
type measureEntry struct {
	once sync.Once
	mm   *measurement
	err  error
}

// Generator builds corpora; it caches instrumented runs across points. All
// methods are safe for concurrent use: the measurement memo is a
// singleflight map, the simulation memo is concurrency-safe, and the
// simulators honour a read-only contract on the cached workloads (no
// cloning needed; see cpusim.App and gpusim.Run).
type Generator struct {
	cfg Config

	// memo is the cross-bag simulation-prefix cache threaded into every
	// cpusim/gpusim run; nil when Config.SimCacheMB == 0 (cold path).
	memo *simcache.Cache

	// fault is the chaos-testing hook (nil in production): fired once per
	// bag at FaultSitePoint before the bag is measured.
	fault faultinject.Injector

	mu    sync.Mutex // guards cache map structure only
	cache map[Member]*measureEntry
}

// NewGenerator returns a generator for the given config.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.CPU.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.GPU.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.BatchSizes) == 0 {
		return nil, fmt.Errorf("dataset: no batch sizes")
	}
	if cfg.Threads <= 0 {
		return nil, fmt.Errorf("dataset: non-positive thread count")
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("dataset: negative worker count %d (0 means NumCPU, 1 means serial)", cfg.Workers)
	}
	if cfg.SimCacheMB < 0 {
		return nil, fmt.Errorf("dataset: negative simulation cache budget %d MB (0 disables the memo)", cfg.SimCacheMB)
	}
	seen := make(map[string]int, len(cfg.Benchmarks))
	for i, n := range cfg.Benchmarks {
		if strings.TrimSpace(n) == "" {
			return nil, fmt.Errorf("dataset: Benchmarks[%d] is empty; use a canonical Table-II benchmark name (one of %s)",
				i, strings.Join(vision.Names(), ", "))
		}
		if j, dup := seen[n]; dup {
			return nil, fmt.Errorf("dataset: Benchmarks[%d] duplicates Benchmarks[%d] (%q); each benchmark may appear once", i, j, n)
		}
		seen[n] = i
		if _, err := vision.ByName(n); err != nil {
			return nil, fmt.Errorf("dataset: Benchmarks[%d]: %w", i, err)
		}
	}
	var memo *simcache.Cache
	if cfg.SimCacheMB > 0 {
		memo = simcache.MustNew(int64(cfg.SimCacheMB) << 20)
	}
	return &Generator{cfg: cfg, memo: memo, cache: map[Member]*measureEntry{}}, nil
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// SimCacheStats returns a snapshot of the simulation memo's counters
// (zeros when the memo is disabled). Exposed on mapc-serve /metrics and in
// the mapc-datagen end-of-run summary.
func (g *Generator) SimCacheStats() simcache.Stats { return g.memo.Stats() }

// SetFaultInjector installs a chaos-testing hook fired once per bag index
// at FaultSitePoint before the bag is measured. Production code never
// calls this; the nil default costs one pointer check per bag.
func (g *Generator) SetFaultInjector(h faultinject.Injector) { g.fault = h }

// measure returns the memoized isolated measurement for member m, computing
// it exactly once (singleflight) no matter how many goroutines ask.
func (g *Generator) measure(m Member) (*measurement, error) {
	g.mu.Lock()
	e, ok := g.cache[m]
	if !ok {
		e = &measureEntry{}
		g.cache[m] = e
	}
	g.mu.Unlock()
	e.once.Do(func() { e.mm, e.err = g.runMeasurement(m) })
	return e.mm, e.err
}

// runMeasurement performs member m's instrumented benchmark run and
// isolated CPU/GPU simulations. The vision RNG is seeded per call from the
// config seed, so concurrent measurements of different members never share
// generator state.
func (g *Generator) runMeasurement(m Member) (*measurement, error) {
	b, err := vision.ByName(m.Benchmark)
	if err != nil {
		return nil, err
	}
	res, err := vision.Run(b, m.Batch, g.cfg.Seed)
	if err != nil {
		return nil, err
	}
	mix, err := mica.Analyze(res.Workload)
	if err != nil {
		return nil, err
	}
	cpuRes, err := cpusim.RunMemo(g.cfg.CPU, g.memo, []cpusim.App{{Workload: res.Workload, Threads: g.cfg.Threads}})
	if err != nil {
		return nil, err
	}
	gpuRes, err := gpusim.RunMemo(g.cfg.GPU, g.memo, []*trace.Workload{res.Workload})
	if err != nil {
		return nil, err
	}
	return &measurement{workload: res.Workload, mix: mix, cpu: cpuRes[0], gpu: gpuRes[0]}, nil
}

// Workload returns the cached instrumented workload for member m, running
// the benchmark if needed. The returned workload is shared with the cache;
// callers that mutate it must Clone first.
func (g *Generator) Workload(m Member) (*trace.Workload, error) {
	mm, err := g.measure(m)
	if err != nil {
		return nil, err
	}
	return mm.workload, nil
}

// IsolatedTimes returns member m's cached isolated CPU and GPU execution
// times in seconds.
func (g *Generator) IsolatedTimes(m Member) (cpuSec, gpuSec float64, err error) {
	mm, err := g.measure(m)
	if err != nil {
		return 0, 0, err
	}
	return mm.cpu.TimeSec, mm.gpu.TimeSec, nil
}

// FeaturesFor measures everything a prediction needs for the bag (a, b) —
// isolated CPU/GPU runs and the co-scheduled CPU run for fairness — without
// executing the bag on the GPU. This is the inference-time entry point: the
// returned vector is raw (un-normalized); apply features.ScaleTimes with
// the training corpus's divisor before passing it to a trained model.
func (g *Generator) FeaturesFor(a, b Member) (x []float64, fairness float64, err error) {
	ma, err := g.measure(a)
	if err != nil {
		return nil, 0, fmt.Errorf("dataset: %v: %w", a, err)
	}
	mb, err := g.measure(b)
	if err != nil {
		return nil, 0, fmt.Errorf("dataset: %v: %w", b, err)
	}
	if g.cfg.CanonicalOrder && mb.cpu.TimeSec > ma.cpu.TimeSec {
		a, b = b, a
		ma, mb = mb, ma
	}
	// The cached workloads are passed directly: the simulators are
	// read-only on their inputs (contract documented on cpusim.App and
	// gpusim.Run, enforced by the mutation-guard tests), so per-point
	// clones are unnecessary.
	cpuShared, err := cpusim.RunMemo(g.cfg.CPU, g.memo, []cpusim.App{
		{Workload: ma.workload, Threads: g.cfg.Threads},
		{Workload: mb.workload, Threads: g.cfg.Threads},
	})
	if err != nil {
		return nil, 0, fmt.Errorf("dataset: shared CPU run %v+%v: %w", a, b, err)
	}
	fairness, err = perfmon.Fairness([]perfmon.AppPerf{
		{IPCAlone: ma.cpu.IPC, IPCShared: cpuShared[0].IPC},
		{IPCAlone: mb.cpu.IPC, IPCShared: cpuShared[1].IPC},
	})
	if err != nil {
		return nil, 0, fmt.Errorf("dataset: fairness %v+%v: %w", a, b, err)
	}
	if fairness > 1 {
		fairness = 1
	}
	x, err = features.BagVector([]features.App{
		{CPUTimeSec: ma.cpu.TimeSec, GPUTimeSec: ma.gpu.TimeSec, Mix: ma.mix},
		{CPUTimeSec: mb.cpu.TimeSec, GPUTimeSec: mb.gpu.TimeSec, Mix: mb.mix},
	}, fairness)
	if err != nil {
		return nil, 0, err
	}
	return x, fairness, nil
}

// MeasurePoint produces the data point for the bag (a, b): co-scheduled CPU
// run for fairness, co-scheduled GPU run for the target. With
// Config.CanonicalOrder, members are sorted heavier-first (by isolated CPU
// time) so the replicated per-app feature blocks are comparable across data
// points.
func (g *Generator) MeasurePoint(a, b Member) (Point, error) {
	ma, err := g.measure(a)
	if err != nil {
		return Point{}, fmt.Errorf("dataset: %v: %w", a, err)
	}
	mb, err := g.measure(b)
	if err != nil {
		return Point{}, fmt.Errorf("dataset: %v: %w", b, err)
	}
	if g.cfg.CanonicalOrder && mb.cpu.TimeSec > ma.cpu.TimeSec {
		a, b = b, a
		ma, mb = mb, ma
	}

	// Shared CPU run → fairness (Equation 2). The cached workloads are
	// passed directly under the simulators' read-only contract; no clones.
	cpuShared, err := cpusim.RunMemo(g.cfg.CPU, g.memo, []cpusim.App{
		{Workload: ma.workload, Threads: g.cfg.Threads},
		{Workload: mb.workload, Threads: g.cfg.Threads},
	})
	if err != nil {
		return Point{}, fmt.Errorf("dataset: shared CPU run %v+%v: %w", a, b, err)
	}
	fairness, err := perfmon.Fairness([]perfmon.AppPerf{
		{IPCAlone: ma.cpu.IPC, IPCShared: cpuShared[0].IPC},
		{IPCAlone: mb.cpu.IPC, IPCShared: cpuShared[1].IPC},
	})
	if err != nil {
		return Point{}, fmt.Errorf("dataset: fairness %v+%v: %w", a, b, err)
	}
	if fairness > 1 {
		// Small simulation noise can push a slowdown ratio above 1;
		// fairness is a ratio of min to max and stays in (0,1].
		fairness = 1
	}

	// Shared GPU run → the target bag time.
	gpuShared, err := gpusim.RunMemo(g.cfg.GPU, g.memo, []*trace.Workload{
		ma.workload, mb.workload,
	})
	if err != nil {
		return Point{}, fmt.Errorf("dataset: shared GPU run %v+%v: %w", a, b, err)
	}

	x, err := features.BagVector([]features.App{
		{CPUTimeSec: ma.cpu.TimeSec, GPUTimeSec: ma.gpu.TimeSec, Mix: ma.mix},
		{CPUTimeSec: mb.cpu.TimeSec, GPUTimeSec: mb.gpu.TimeSec, Mix: mb.mix},
	}, fairness)
	if err != nil {
		return Point{}, err
	}
	return Point{
		Members:     [2]Member{a, b},
		Homogeneous: a == b,
		X:           x,
		Y:           gpusim.BagTime(gpuShared),
		Fairness:    fairness,
		CPUTimes:    [2]float64{ma.cpu.TimeSec, mb.cpu.TimeSec},
		GPUTimes:    [2]float64{ma.gpu.TimeSec, mb.gpu.TimeSec},
	}, nil
}

// Bags enumerates the corpus's 2-application bags in their canonical
// order: homogeneous points for every (benchmark, batch), heterogeneous
// same-batch pairs with the batch cycling through the sweep, then the
// MixedPairs extra mixed-batch pairs. Enumeration is pure — no simulator
// runs — and its order is what makes parallel generation reproducible:
// point i of the corpus is always bag i of this list.
func (g *Generator) Bags() ([][2]Member, error) {
	names := g.cfg.BenchmarkNames()
	var bags [][2]Member

	// Homogeneous: every benchmark x len(BatchSizes).
	for _, n := range names {
		for _, bs := range g.cfg.BatchSizes {
			m := Member{Benchmark: n, Batch: bs}
			bags = append(bags, [2]Member{m, m})
		}
	}

	// Heterogeneous, equal-batch: all C(n,2) pairs, with the batch size
	// cycling through the sweep so the pairs cover the same input range
	// as the homogeneous points ("different combinations of batch
	// sizes", Section V-B).
	pairNo := 0
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			bs := g.cfg.BatchSizes[pairNo%len(g.cfg.BatchSizes)]
			pairNo++
			bags = append(bags, [2]Member{
				{Benchmark: names[i], Batch: bs},
				{Benchmark: names[j], Batch: bs},
			})
		}
	}

	mixed, err := mixedBags(names, g.cfg.BatchSizes, g.cfg.MixedPairs)
	if err != nil {
		return nil, err
	}
	return append(bags, mixed...), nil
}

// mixedBags enumerates the heterogeneous mixed-batch pairs: a fixed
// pseudo-pattern walk over (pair, batch) combinations, skipped entirely
// (like the legacy generator) when fewer than three batch sizes are
// configured. The walk is bounded: with a degenerate registry (e.g. a
// single benchmark, where every candidate pair collides) the legacy loop
// spun forever; now it returns a descriptive error.
func mixedBags(names []string, batchSizes []int, count int) ([][2]Member, error) {
	if count <= 0 || len(batchSizes) <= 2 {
		return nil, nil
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("dataset: no benchmarks to build %d mixed-batch pairs from", count)
	}
	// Every full cycle of len(names) steps visits at least one non-colliding
	// (i, j) pair when len(names) > 1, so count+1 cycles (scaled by the
	// batch period for slack) always suffice for feasible configurations.
	maxSteps := (count + 1) * len(names) * len(batchSizes)
	var out [][2]Member
	added := 0
	for k := 0; added < count && k < maxSteps; k++ {
		i := k % len(names)
		j := (k*3 + 1) % len(names)
		if i == j {
			continue
		}
		ba := batchSizes[1+(k%(len(batchSizes)-1))]
		bb := batchSizes[1+((k+2)%(len(batchSizes)-1))]
		out = append(out, [2]Member{
			{Benchmark: names[i], Batch: ba},
			{Benchmark: names[j], Batch: bb},
		})
		added++
	}
	if added < count {
		return nil, fmt.Errorf(
			"dataset: assembled only %d of %d mixed-batch pairs after %d walk steps (%d benchmarks, %d batch sizes): every candidate pair collides",
			added, count, maxSteps, len(names), len(batchSizes))
	}
	return out, nil
}

// Generate builds the full corpus over the measurement engine's worker
// pool: the bag list is enumerated up front, Config.Workers goroutines
// measure bags concurrently, and each result is written to its bag's index,
// so the corpus is bit-for-bit identical to a Workers=1 serial run.
func (g *Generator) Generate() (*Corpus, error) {
	return g.generate(context.Background(), nil)
}

// Resume builds the corpus crash-safely against journal j: bags already
// journaled are restored without re-measurement, every freshly measured
// point is durably appended before the run moves on, and cancelling ctx
// (SIGINT/SIGTERM in mapc-datagen) stops the pool claiming new bags while
// in-flight measurements finish and commit. Because each point is a pure
// function of (Config, bag), an interrupted-and-resumed corpus is
// bit-for-bit identical — same SHA-256 — to an uninterrupted run at any
// worker count. The caller owns j (Commit/Close).
func (g *Generator) Resume(ctx context.Context, j *Journal) (*Corpus, error) {
	if j == nil {
		return nil, errors.New("dataset: Resume requires a journal (use Generate for unjournaled runs)")
	}
	return g.generate(ctx, j)
}

// generate is the shared engine behind Generate and Resume.
func (g *Generator) generate(ctx context.Context, j *Journal) (*Corpus, error) {
	bags, err := g.Bags()
	if err != nil {
		return nil, err
	}
	points := make([]Point, len(bags))
	have := make([]bool, len(bags))
	if j != nil {
		for i, bag := range bags {
			if p, ok := j.Lookup(BagKey(bag[0], bag[1])); ok {
				points[i] = p
				have[i] = true
			}
		}
	}
	err = parallel.ForEach(g.cfg.Workers, len(bags), func(i int) error {
		if have[i] {
			return nil // restored from the journal
		}
		if err := ctx.Err(); err != nil {
			return err // interrupted: stop claiming new bags
		}
		if err := faultinject.Fire(g.fault, FaultSitePoint, i); err != nil {
			return err
		}
		p, err := g.MeasurePoint(bags[i][0], bags[i][1])
		if err != nil {
			return err
		}
		points[i] = p
		if j != nil {
			// Durable before visible: the point is fsynced into the
			// journal before the run proceeds, so a crash after this line
			// never re-measures bag i.
			if err := j.Append(BagKey(bags[i][0], bags[i][1]), p); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	fnames, err := features.Names(2)
	if err != nil {
		return nil, err
	}
	c := &Corpus{Points: points, FeatureNames: fnames}
	if err := c.normalize(); err != nil {
		return nil, err
	}
	return c, nil
}

// normalize applies the Section V-C time normalization in place.
func (c *Corpus) normalize() error {
	d := c.rawDataset()
	div, err := features.NormalizeTimes(d)
	if err != nil {
		return err
	}
	c.CPUTimeDivisor = div
	// rawDataset shares row slices with Points, so Points now hold the
	// normalized features.
	return nil
}

// rawDataset wraps the corpus rows in an ml.Dataset sharing storage.
func (c *Corpus) rawDataset() *ml.Dataset {
	d := &ml.Dataset{FeatureNames: c.FeatureNames}
	for i := range c.Points {
		p := &c.Points[i]
		d.X = append(d.X, p.X)
		d.Y = append(d.Y, p.Y)
		d.Groups = append(d.Groups, p.Members[0].Benchmark)
	}
	return d
}

// Dataset returns the corpus as an ml.Dataset. Group labels hold the first
// member's benchmark; use ContainsBenchmark for the paper's LOOCV split.
func (c *Corpus) Dataset() *ml.Dataset { return c.rawDataset() }

// ContainsBenchmark reports whether point i includes the named benchmark.
func (c *Corpus) ContainsBenchmark(i int, benchmark string) bool {
	p := &c.Points[i]
	return p.Members[0].Benchmark == benchmark || p.Members[1].Benchmark == benchmark
}

// BenchmarkNames returns the distinct benchmarks present, sorted.
func (c *Corpus) BenchmarkNames() []string {
	seen := map[string]bool{}
	for i := range c.Points {
		seen[c.Points[i].Members[0].Benchmark] = true
		seen[c.Points[i].Members[1].Benchmark] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
